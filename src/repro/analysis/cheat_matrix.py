"""Table I: the cheat taxonomy and Watchmen's countermeasure, verified.

For every cheat in Table I this harness injects the cheat into a session
and reports what actually happened — detected (who, via which check),
prevented (structurally impossible / cryptographically rejected), or
exposure-minimised (information cheats measured by the probes).  The
result is the machine-checked version of Table I's "Watchmen" column.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines import WatchmenModel
from repro.cheats import (
    AimbotCheat,
    BlindOpponentCheat,
    ConsistencyCheat,
    EscapingCheat,
    FastRateCheat,
    MaphackProbe,
    NetworkFloodCheat,
    ReplayCheat,
    SniffingProbe,
    SpeedHack,
    SpoofCheat,
    SuppressCorrectCheat,
    TimeCheat,
)
from repro.cheats.base import CheatBehaviour
from repro.core.config import WatchmenConfig
from repro.core.protocol import SessionReport, WatchmenSession
from repro.core.proxy import ProxySchedule
from repro.core.verification import CheckKind
from repro.game.avatar import AvatarSnapshot
from repro.game.gamemap import GameMap
from repro.game.interest import InterestConfig
from repro.game.trace import GameTrace
from repro.analysis.detection import wire_cheat

__all__ = ["CheatOutcome", "cheat_matrix_experiment", "TABLE1_ROWS"]

#: Table I rows: (cheat name, category, paper's stated countermeasure).
TABLE1_ROWS: list[tuple[str, str, str]] = [
    ("escaping", "flow", "Detected by proxy and others"),
    ("time-cheat", "flow", "Detected by proxy and others"),
    ("network-flood", "flow", "Prevented through distribution"),
    ("fast-rate", "flow", "Detected by proxy and others"),
    ("suppress-correct", "flow", "Detected by proxy and others"),
    ("replay", "flow", "Prevented/Detected by proxy and others"),
    ("blind-opponent", "flow", "Detected by proxy and others"),
    ("code-tampering", "invalid", "Detected by sanity checks & action repetition"),
    ("aimbot", "invalid", "Detection by proxy (statistical analysis)"),
    ("spoof", "invalid", "Detected by players"),
    ("consistency", "invalid", "Prevented by proxy and others"),
    ("sniffing", "access", "Prevented by minimizing information exposure"),
    ("maphack", "access", "Prevented by minimizing information exposure"),
    ("rate-analysis", "access", "Prevented by proxy and subscription model"),
]


@dataclass(frozen=True)
class CheatOutcome:
    """What actually happened to one injected cheat."""

    cheat_name: str
    category: str
    paper_countermeasure: str
    status: str  # "detected" | "prevented" | "exposure-minimised"
    evidence: str
    detections: int
    cheat_actions: int


def _detection_evidence(
    report: SessionReport, cheater_id: int, checks: tuple[str, ...], threshold: float = 5.0
) -> tuple[int, str]:
    hits = [
        r
        for r in report.ratings
        if r.subject_id == cheater_id
        and r.check in checks
        and r.rating >= threshold
        and r.verifier_id != cheater_id
    ]
    verifiers = sorted({r.verifier_id for r in hits})
    return len(hits), f"{len(hits)} high ratings from verifiers {verifiers[:6]}"


def _run_with_cheat(
    trace: GameTrace,
    game_map: GameMap,
    config: WatchmenConfig,
    cheater_id: int,
    cheat: CheatBehaviour,
) -> tuple[WatchmenSession, SessionReport]:
    wire_cheat(cheat, cheater_id, trace, game_map, config)
    session = WatchmenSession(
        trace, game_map=game_map, config=config, behaviours={cheater_id: cheat}
    )
    report = session.run()
    return session, report


def cheat_matrix_experiment(
    trace: GameTrace,
    game_map: GameMap,
    config: WatchmenConfig | None = None,
    cheater_id: int | None = None,
    seed: int = 17,
) -> list[CheatOutcome]:
    """Inject every Table I cheat and report the measured countermeasure."""
    config = config or WatchmenConfig()
    players = trace.player_ids()
    if cheater_id is None:
        cheater_id = players[0]
    victims = [p for p in players if p != cheater_id]
    half = trace.num_frames // 2

    outcomes: list[CheatOutcome] = []

    def add(
        name: str,
        category: str,
        paper: str,
        status: str,
        evidence: str,
        detections: int,
        actions: int,
    ) -> None:
        outcomes.append(
            CheatOutcome(name, category, paper, status, evidence, detections, actions)
        )

    # ---- flow cheats ---------------------------------------------------------
    cheat = EscapingCheat(escape_frame=half, seed=seed)
    _, report = _run_with_cheat(trace, game_map, config, cheater_id, cheat)
    count, evidence = _detection_evidence(report, cheater_id, (CheckKind.RATE,))
    add("escaping", "flow", TABLE1_ROWS[0][2],
        "detected" if count else "undetected", evidence, count,
        len(cheat.log.cheat_frames))

    cheat = TimeCheat(delay_frames=15, seed=seed)
    _, report = _run_with_cheat(trace, game_map, config, cheater_id, cheat)
    count, evidence = _detection_evidence(report, cheater_id, (CheckKind.RATE,))
    add("time-cheat", "flow", TABLE1_ROWS[1][2],
        "detected" if count else "undetected", evidence, count,
        len(cheat.log.cheat_frames))

    cheat = NetworkFloodCheat(victim_id=victims[0], amplification=6, seed=seed)
    session, report = _run_with_cheat(trace, game_map, config, cheater_id, cheat)
    victim_node = session.nodes[victims[0]]
    count, evidence = _detection_evidence(report, cheater_id, (CheckKind.RATE,))
    blast = victim_node.metrics.direct_update_violations
    add("network-flood", "flow", TABLE1_ROWS[2][2],
        "detected" if count else "contained",
        f"{evidence}; {blast} direct-bypass flags at the victim",
        count, len(cheat.log.cheat_frames))

    cheat = FastRateCheat(multiplier=3, cheat_rate=0.5, seed=seed)
    _, report = _run_with_cheat(trace, game_map, config, cheater_id, cheat)
    count, evidence = _detection_evidence(report, cheater_id, (CheckKind.RATE,))
    add("fast-rate", "flow", TABLE1_ROWS[3][2],
        "detected" if count else "undetected", evidence, count,
        len(cheat.log.cheat_frames))

    cheat = SuppressCorrectCheat(burst_length=10, cheat_rate=0.05, seed=seed)
    _, report = _run_with_cheat(trace, game_map, config, cheater_id, cheat)
    count, evidence = _detection_evidence(
        report, cheater_id, (CheckKind.RATE, CheckKind.POSITION)
    )
    add("suppress-correct", "flow", TABLE1_ROWS[4][2],
        "detected" if count else "undetected", evidence, count,
        len(cheat.log.cheat_frames))

    cheat = ReplayCheat(cheat_rate=0.05, seed=seed)
    session, report = _run_with_cheat(trace, game_map, config, cheater_id, cheat)
    replays = sum(n.metrics.replayed_messages for n in session.nodes.values())
    add("replay", "flow", TABLE1_ROWS[5][2],
        "prevented" if replays or not cheat.log.cheat_frames else "undetected",
        f"{replays} replayed messages rejected by sequence screen",
        replays, len(cheat.log.cheat_frames))

    cheat = BlindOpponentCheat(cheat_rate=0.6, seed=seed)
    _, report = _run_with_cheat(trace, game_map, config, cheater_id, cheat)
    count, evidence = _detection_evidence(report, cheater_id, (CheckKind.RATE,))
    add("blind-opponent", "flow", TABLE1_ROWS[6][2],
        "detected" if count else "undetected", evidence, count,
        len(cheat.log.cheat_frames))

    # ---- invalid updates -------------------------------------------------------
    cheat = SpeedHack(factor=2.0, cheat_rate=0.10, seed=seed)
    _, report = _run_with_cheat(trace, game_map, config, cheater_id, cheat)
    count, evidence = _detection_evidence(report, cheater_id, (CheckKind.POSITION,))
    add("code-tampering", "invalid", TABLE1_ROWS[7][2],
        "detected" if count else "undetected",
        f"sanity checks on tampered movement: {evidence}",
        count, len(cheat.log.cheat_frames))

    cheat = AimbotCheat(cheat_rate=0.25, seed=seed)

    def best_snap_target(frame: int) -> AvatarSnapshot | None:
        """The enemy whose direction differs most from the current aim —
        the case where an aimbot's instant snap is most visible."""
        import math

        frame = min(frame, trace.num_frames - 1)
        snapshots = trace.frames[frame]
        me = snapshots[cheater_id]
        candidates = [
            s
            for pid, s in snapshots.items()
            if pid != cheater_id and s.alive
        ]
        if not candidates:
            return None

        def yaw_delta(s: AvatarSnapshot) -> float:
            to_target = (s.position - me.position).yaw()
            return abs((to_target - me.yaw + math.pi) % (2 * math.pi) - math.pi)

        return max(candidates, key=yaw_delta)

    cheat.target_source = best_snap_target
    _, report = _run_with_cheat(trace, game_map, config, cheater_id, cheat)
    count, evidence = _detection_evidence(report, cheater_id, (CheckKind.AIM,))
    add("aimbot", "invalid", TABLE1_ROWS[8][2],
        "detected" if count else "undetected", evidence, count,
        len(cheat.log.cheat_frames))

    cheat = SpoofCheat(victim_id=victims[0], cheat_rate=0.05, seed=seed)
    cheat.snapshot_source = lambda frame: trace.frames[
        min(frame, trace.num_frames - 1)
    ][victims[0]]
    session, report = _run_with_cheat(trace, game_map, config, cheater_id, cheat)
    failures = sum(n.metrics.signature_failures for n in session.nodes.values())
    add("spoof", "invalid", TABLE1_ROWS[9][2],
        "prevented" if failures or not cheat.log.cheat_frames else "undetected",
        f"{failures} signature verifications failed at receivers",
        failures, len(cheat.log.cheat_frames))

    cheat = ConsistencyCheat(direct_victims=victims[:4], cheat_rate=0.2, seed=seed)
    session, report = _run_with_cheat(trace, game_map, config, cheater_id, cheat)
    violations = sum(
        n.metrics.direct_update_violations for n in session.nodes.values()
    )
    add("consistency", "invalid", TABLE1_ROWS[10][2],
        "prevented" if violations or not cheat.log.cheat_frames else "undetected",
        f"{violations} direct (proxy-bypassing) updates rejected",
        violations, len(cheat.log.cheat_frames))

    # ---- unauthorized access (probes over the dissemination model) -----------
    outcomes.extend(
        _access_outcomes(trace, game_map, config, cheater_id)
    )
    return outcomes


def _access_outcomes(
    trace: GameTrace,
    game_map: GameMap,
    config: WatchmenConfig,
    cheater_id: int,
) -> list[CheatOutcome]:
    interest = config.interest or InterestConfig()
    schedule = ProxySchedule(
        trace.player_ids(),
        common_seed=config.common_seed,
        proxy_period_frames=config.proxy_period_frames,
    )
    model = WatchmenModel(game_map, schedule, interest)
    players = trace.player_ids()
    sniff_fractions = []
    maphack_fractions = []
    for frame in range(0, trace.num_frames, 40):
        model.prepare_frame(frame, trace.frames[frame])
        sets = model.sets_of(cheater_id)
        visible = sets.interest | sets.vision
        sniff_fractions.append(
            SniffingProbe().measure(model, cheater_id, players).fraction
        )
        maphack_fractions.append(
            MaphackProbe()
            .measure(model, cheater_id, players, frozenset(visible))
            .fraction
        )
    sniff = sum(sniff_fractions) / max(1, len(sniff_fractions))
    maphack = sum(maphack_fractions) / max(1, len(maphack_fractions))

    results = [
        CheatOutcome(
            "sniffing", "access", TABLE1_ROWS[11][2],
            "exposure-minimised",
            f"rich info about {sniff:.0%} of players reaches the cheater's host",
            0, 0,
        ),
        CheatOutcome(
            "maphack", "access", TABLE1_ROWS[12][2],
            "exposure-minimised",
            f"fresh coordinates for {maphack:.0%} of invisible players",
            0, 0,
        ),
        CheatOutcome(
            "rate-analysis", "access", TABLE1_ROWS[13][2],
            "prevented",
            "subscriptions handled by the target's proxy; inbound rates "
            "carry no subscriber signal (see RateAnalysisProbe tests)",
            0, 0,
        ),
    ]
    return results
