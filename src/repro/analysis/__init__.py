"""Experiment harnesses: one per figure/table of the paper's evaluation.

- Figure 1 → :mod:`repro.analysis.heatmap`
- Figure 4 → :mod:`repro.analysis.exposure`
- Figure 5 → :mod:`repro.analysis.witnesses`
- Figure 6 → :mod:`repro.analysis.detection`
- Figure 7 → :mod:`repro.analysis.update_age`
- Table I  → :mod:`repro.analysis.cheat_matrix`
- In-text churn stats → :mod:`repro.analysis.churn`
- Bandwidth scaling → :mod:`repro.analysis.scalability`
- Text rendering → :mod:`repro.analysis.report`
"""

from repro.analysis.cheat_matrix import CheatOutcome, cheat_matrix_experiment
from repro.analysis.churn import ChurnStats, churn_statistics
from repro.analysis.detection import (
    DetectionOutcome,
    calibrate_thresholds,
    detection_experiment,
    figure6_experiment,
)
from repro.analysis.exposure import ExposureResult, default_models, exposure_experiment
from repro.analysis.heatmap import (
    Heatmap,
    hotspot_concentration,
    presence_heatmap,
    render_ascii,
)
from repro.analysis.scalability import (
    ScalabilityPoint,
    client_server_kbps,
    naive_p2p_node_kbps,
    scalability_experiment,
)
from repro.analysis.update_age import (
    UpdateAgeResult,
    figure7_experiment,
    update_age_experiment,
)
from repro.analysis.witnesses import (
    WitnessResult,
    honest_proxy_probability,
    witness_experiment,
)

__all__ = [
    "CheatOutcome",
    "ChurnStats",
    "DetectionOutcome",
    "ExposureResult",
    "Heatmap",
    "ScalabilityPoint",
    "UpdateAgeResult",
    "WitnessResult",
    "calibrate_thresholds",
    "cheat_matrix_experiment",
    "churn_statistics",
    "client_server_kbps",
    "default_models",
    "detection_experiment",
    "exposure_experiment",
    "figure6_experiment",
    "figure7_experiment",
    "honest_proxy_probability",
    "hotspot_concentration",
    "naive_p2p_node_kbps",
    "presence_heatmap",
    "render_ascii",
    "scalability_experiment",
    "update_age_experiment",
    "witness_experiment",
]
