"""Figure 7: distribution of the age of received updates.

"Distribution of the age of received updates (all three types) from the
frame they should have been received" under the King and PeerWise latency
sets (US-filtered means 62 / 68 ms RTT) with 1 % message loss.  "Quake
tolerates up to 150 ms latency, therefore, only the messages that are 3
frames old or more ... are counted as loss."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import WatchmenConfig
from repro.core.protocol import WatchmenSession
from repro.game.gamemap import GameMap
from repro.game.trace import GameTrace
from repro.net.latency import LatencyMatrix, king_like, peerwise_like
from repro.net.transport import NetworkConfig

__all__ = ["UpdateAgeResult", "update_age_experiment", "figure7_experiment"]


@dataclass(frozen=True)
class UpdateAgeResult:
    """One latency model's age distribution."""

    latency_name: str
    pdf: dict[int, float]  # age (frames) -> probability
    by_kind: dict[str, dict[int, float]]
    stale_fraction: float  # ≥ max_useful_age — the paper's loss figure
    mean_upload_kbps: float
    messages_sent: int

    def cdf_at(self, age: int) -> float:
        return sum(p for a, p in self.pdf.items() if a <= age)


def update_age_experiment(
    trace: GameTrace,
    game_map: GameMap,
    latency: LatencyMatrix,
    config: WatchmenConfig | None = None,
    loss_rate: float = 0.01,
    seed: int = 0,
) -> UpdateAgeResult:
    """Run one Watchmen session and extract the Figure 7 series."""
    config = config or WatchmenConfig()
    session = WatchmenSession(
        trace,
        game_map=game_map,
        config=config,
        latency=latency,
        network_config=NetworkConfig(loss_rate=loss_rate, seed=seed),
    )
    report = session.run()
    by_kind = {}
    for kind, histogram in report.age_histogram_by_kind.items():
        total = sum(histogram.values())
        by_kind[kind] = (
            {age: count / total for age, count in sorted(histogram.items())}
            if total
            else {}
        )
    return UpdateAgeResult(
        latency_name=latency.name,
        pdf=report.age_pdf(),
        by_kind=by_kind,
        stale_fraction=report.stale_fraction(config.max_useful_age_frames),
        mean_upload_kbps=report.mean_upload_kbps,
        messages_sent=report.messages_sent,
    )


def figure7_experiment(
    trace: GameTrace,
    game_map: GameMap,
    config: WatchmenConfig | None = None,
    loss_rate: float = 0.01,
    seed: int = 0,
) -> list[UpdateAgeResult]:
    """Both latency sets of Figure 7 (King-like and PeerWise-like)."""
    size = len(trace.player_ids())
    return [
        update_age_experiment(
            trace, game_map, king_like(size, seed=seed), config, loss_rate, seed
        ),
        update_age_experiment(
            trace, game_map, peerwise_like(size, seed=seed), config, loss_rate, seed
        ),
    ]
