"""Cheat-injection framework: behaviours that wrap a protocol node.

Every Table I cheat is a :class:`CheatBehaviour` — a
:class:`~repro.core.node.NodeBehaviour` with three hooks the node calls at
its trust boundary:

- ``mutate_snapshot`` — lie about one's own avatar state (speed hacks,
  teleports, escaping-into-thin-air);
- ``filter_outgoing`` — drop, delay, duplicate or rewrite messages on
  their way out (flow cheats, consistency cheats);
- ``extra_messages`` — fabricate traffic (fake kill claims, bogus
  subscriptions, replays, spoofed messages, floods).

Each behaviour keeps exact ground truth of when it actually cheated
(``cheat_frames``), which the detection experiment (Figure 6) joins
against the verifiers' ratings to compute success and false-positive
rates.
"""

from __future__ import annotations

from random import Random
from dataclasses import dataclass, field

from repro.core.messages import GameMessage
from repro.game.avatar import AvatarSnapshot

__all__ = ["CheatBehaviour", "CheatLog"]


@dataclass
class CheatLog:
    """Ground truth about a cheater's actual misdeeds."""

    cheat_frames: set[int] = field(default_factory=set)
    cheat_actions: int = 0
    honest_actions: int = 0

    def record_cheat(self, frame: int) -> None:
        self.cheat_frames.add(frame)
        self.cheat_actions += 1

    def record_honest(self) -> None:
        self.honest_actions += 1

    @property
    def cheat_fraction(self) -> float:
        total = self.cheat_actions + self.honest_actions
        return self.cheat_actions / total if total else 0.0


class CheatBehaviour:
    """Base cheat: honest by default, cheating on a seeded coin flip.

    ``cheat_rate`` is the probability of cheating per opportunity — the
    Figure 6 experiment runs "a cheater sends up to 10 % invalid cheat
    messages", i.e. cheat_rate=0.10.
    """

    name = "honest"

    def __init__(self, cheat_rate: float = 0.10, seed: int = 0) -> None:
        if not 0.0 <= cheat_rate <= 1.0:
            raise ValueError("cheat_rate must be in [0, 1]")
        self.cheat_rate = cheat_rate
        self.rng = Random(seed)
        self.log = CheatLog()

    # -- NodeBehaviour hooks (honest defaults) -------------------------------

    def mutate_snapshot(self, frame: int, snapshot: AvatarSnapshot) -> AvatarSnapshot:
        del frame
        return snapshot

    def filter_outgoing(
        self, frame: int, message: GameMessage, destination: int
    ) -> list[tuple[GameMessage, int]]:
        del frame
        return [(message, destination)]

    def extra_messages(self, frame: int) -> list[tuple[GameMessage, int]]:
        del frame
        return []

    # -- helpers ---------------------------------------------------------------

    def _roll(self) -> bool:
        """One cheat-opportunity coin flip (and bookkeeping)."""
        cheat = self.rng.random() < self.cheat_rate
        if not cheat:
            self.log.record_honest()
        return cheat
