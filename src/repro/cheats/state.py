"""Invalid-update cheats (Table I, second block) plus unauthorized sends.

- :class:`SpeedHack` — move at ``factor`` × the physics speed cap "at
  random times" (the Figure 6 position cheat);
- :class:`TeleportCheat` — occasional long-range warps;
- :class:`FakeKillCheat` — unduly claim kills (the Figure 6 kill cheat);
- :class:`GuidanceLieCheat` — send guidance predictions unrelated to the
  avatar's real motion (the Figure 6 guidance cheat);
- :class:`BogusSubscriptionCheat` — IS/VS-subscribe to players one cannot
  see (the Figure 6 IS-sub / VS-sub cheats — a maphack consumer);
- :class:`ReplayCheat` — re-send captured signed messages of another player;
- :class:`SpoofCheat` — send messages claiming another player's identity;
- :class:`ConsistencyCheat` — send different state updates to different
  players by bypassing the proxy with direct sends.
"""

from __future__ import annotations

from dataclasses import replace

from repro.cheats.base import CheatBehaviour
from repro.core.messages import (
    SUB_INTEREST,
    SUB_VISION,
    GameMessage,
    GuidanceMessage,
    KillClaim,
    StateUpdate,
    SubscriptionRequest,
)
from repro.game.avatar import AvatarSnapshot
from repro.game.deadreckoning import GuidancePrediction
from repro.game.vector import Vec3

__all__ = [
    "AimbotCheat",
    "SpeedHack",
    "TeleportCheat",
    "FakeKillCheat",
    "GuidanceLieCheat",
    "BogusSubscriptionCheat",
    "ReplayCheat",
    "SpoofCheat",
    "ConsistencyCheat",
]


class SpeedHack(CheatBehaviour):
    """Amplify own movement: "cheaters move randomly at [1.5–3]× the
    acceptable speed".

    The hack accumulates a position offset: whenever it fires, the avatar's
    published position jumps ahead along its velocity by (factor−1) frames'
    worth of travel, compounding — exactly what a client-side speed
    multiplier looks like from outside.
    """

    name = "speed-hack"

    def __init__(
        self, factor: float = 2.0, cheat_rate: float = 0.10, seed: int = 0
    ) -> None:
        super().__init__(cheat_rate=cheat_rate, seed=seed)
        if factor <= 1.0:
            raise ValueError("factor must exceed 1 to be a speed-up")
        self.factor = factor
        self._offset = Vec3.zero()

    def mutate_snapshot(self, frame: int, snapshot: AvatarSnapshot) -> AvatarSnapshot:
        if snapshot.alive and self._roll():
            step = snapshot.velocity * (0.05 * (self.factor - 1.0))
            if step.length() < 1.0:
                # Standing still: surge in the facing direction instead.
                step = Vec3.from_yaw(snapshot.yaw, 320.0 * 0.05 * (self.factor - 1.0))
            self._offset = self._offset + step
            self.log.record_cheat(frame)
        if self._offset.length() == 0.0:
            return snapshot
        return replace(snapshot, position=snapshot.position + self._offset)


class TeleportCheat(CheatBehaviour):
    """Occasional instant warps of ``distance`` units."""

    name = "teleport"

    def __init__(
        self, distance: float = 600.0, cheat_rate: float = 0.02, seed: int = 0
    ) -> None:
        super().__init__(cheat_rate=cheat_rate, seed=seed)
        self.distance = distance
        self._offset = Vec3.zero()

    def mutate_snapshot(self, frame: int, snapshot: AvatarSnapshot) -> AvatarSnapshot:
        if snapshot.alive and self._roll():
            import math

            angle = self.rng.uniform(-math.pi, math.pi)
            self._offset = self._offset + Vec3.from_yaw(angle, self.distance)
            self.log.record_cheat(frame)
        if self._offset.length() == 0.0:
            return snapshot
        return replace(snapshot, position=snapshot.position + self._offset)


class FakeKillCheat(CheatBehaviour):
    """Claim kills that never happened against arbitrary victims."""

    name = "fake-kill"

    def __init__(
        self,
        victim_ids: list[int],
        weapon: str = "railgun",
        cheat_rate: float = 0.02,
        seed: int = 0,
    ) -> None:
        super().__init__(cheat_rate=cheat_rate, seed=seed)
        if not victim_ids:
            raise ValueError("need candidate victims")
        self.victim_ids = list(victim_ids)
        self.weapon = weapon
        self._sequence = 3_000_000
        self.player_id: int | None = None  # filled by the harness
        self.proxy_lookup = None  # frame -> my proxy id, filled by harness

    def extra_messages(self, frame: int) -> list[tuple[GameMessage, int]]:
        if self.player_id is None or self.proxy_lookup is None:
            return []
        if not self._roll():
            return []
        self.log.record_cheat(frame)
        self._sequence += 1
        victim = self.rng.choice(self.victim_ids)
        claim = KillClaim(
            sender_id=self.player_id,
            victim_id=victim,
            frame=frame,
            sequence=self._sequence,
            weapon=self.weapon,
            claimed_distance=self.rng.uniform(100.0, 3000.0),
        )
        return [(claim, self.proxy_lookup(frame))]


class GuidanceLieCheat(CheatBehaviour):
    """Rewrite guidance predictions to point somewhere unrelated."""

    name = "guidance-lie"

    def __init__(self, cheat_rate: float = 0.5, seed: int = 0) -> None:
        super().__init__(cheat_rate=cheat_rate, seed=seed)

    def filter_outgoing(
        self, frame: int, message: GameMessage, destination: int
    ) -> list[tuple[GameMessage, int]]:
        if not isinstance(message, GuidanceMessage):
            return [(message, destination)]
        if not message.snapshot.alive:
            # Lying about a corpse misleads nobody; not a cheat event.
            return [(message, destination)]
        if not self._roll():
            return [(message, destination)]
        self.log.record_cheat(frame)
        import math

        fake_direction = Vec3.from_yaw(
            self.rng.uniform(-math.pi, math.pi), 320.0
        )
        lie = GuidancePrediction(
            frame=message.prediction.frame,
            origin=message.prediction.origin,
            velocity=fake_direction,
            yaw=message.prediction.yaw,
            horizon_frames=message.prediction.horizon_frames,
        )
        return [(replace(message, prediction=lie), destination)]


class BogusSubscriptionCheat(CheatBehaviour):
    """Subscribe to players far outside one's vision (maphack feeding).

    The harness supplies ``invisible_targets(frame)`` — players the
    cheater could *not* legitimately see; the cheat IS- or VS-subscribes
    to one of them through the regular proxy path.
    """

    name = "bogus-subscription"

    def __init__(
        self,
        kind: str = SUB_INTEREST,
        cheat_rate: float = 0.10,
        seed: int = 0,
    ) -> None:
        super().__init__(cheat_rate=cheat_rate, seed=seed)
        if kind not in (SUB_INTEREST, SUB_VISION):
            raise ValueError("kind must be an IS or VS subscription")
        self.kind = kind
        self._sequence = 4_000_000
        self.player_id: int | None = None
        self.proxy_lookup = None
        self.invisible_targets = None  # frame -> list of player ids

    def extra_messages(self, frame: int) -> list[tuple[GameMessage, int]]:
        if (
            self.player_id is None
            or self.proxy_lookup is None
            or self.invisible_targets is None
        ):
            return []
        if not self._roll():
            return []
        targets = self.invisible_targets(frame)
        if not targets:
            self.log.record_honest()
            return []
        self.log.record_cheat(frame)
        self._sequence += 1
        request = SubscriptionRequest(
            sender_id=self.player_id,
            target_id=self.rng.choice(targets),
            kind=self.kind,
            frame=frame,
            sequence=self._sequence,
        )
        return [(request, self.proxy_lookup(frame))]


class AimbotCheat(CheatBehaviour):
    """Snap the published aim instantly onto the nearest enemy.

    "Aimbots: using an intelligent program to provide ... automatic weapon
    aiming — detection by proxy (statistical analysis)."  The statistical
    tell is angular speed beyond the engine's turn rate, which the
    :class:`~repro.core.verification.AimVerifier` watches.
    """

    name = "aimbot"

    def __init__(self, cheat_rate: float = 0.10, seed: int = 0) -> None:
        super().__init__(cheat_rate=cheat_rate, seed=seed)
        self.target_source = None  # harness: frame -> target AvatarSnapshot

    def mutate_snapshot(self, frame: int, snapshot: AvatarSnapshot) -> AvatarSnapshot:
        if self.target_source is None or not snapshot.alive:
            return snapshot
        if not self._roll():
            return snapshot
        target = self.target_source(frame)
        if target is None:
            self.log.record_honest()
            return snapshot
        import math

        snap_yaw = (target.position - snapshot.position).yaw()
        delta = abs((snap_yaw - snapshot.yaw + math.pi) % (2 * math.pi) - math.pi)
        if delta < 1.2:
            self.log.record_honest()
            return snapshot  # no visible snap; not a cheat sample
        self.log.record_cheat(frame)
        return replace(snapshot, yaw=snap_yaw)


class ReplayCheat(CheatBehaviour):
    """Capture signed messages passing through (as a proxy) and re-send them.

    "Replay cheat: resend signed & encrypted updates of a different
    player."  The sequence screen at every receiver makes each replayed
    message land exactly once in a duplicate check.
    """

    name = "replay"

    def __init__(self, cheat_rate: float = 0.05, seed: int = 0) -> None:
        super().__init__(cheat_rate=cheat_rate, seed=seed)
        self._captured: list[GameMessage] = []
        self.roster: list[int] | None = None  # filled by the harness

    def capture(self, message: GameMessage) -> None:
        """Record a signed third-party message seen in transit."""
        if message.signature is not None and len(self._captured) < 512:
            self._captured.append(message)

    def observe_incoming(self, frame: int, src: int, message: GameMessage) -> None:
        """Node hook: sniff signed messages arriving at the cheater."""
        del frame, src
        self.capture(message)

    def extra_messages(self, frame: int) -> list[tuple[GameMessage, int]]:
        if not self._captured or not self.roster or not self._roll():
            return []
        self.log.record_cheat(frame)
        message = self.rng.choice(self._captured)
        return [(message, self.rng.choice(self.roster))]


class SpoofCheat(CheatBehaviour):
    """Send state updates pretending to be ``victim_id``.

    The forged message carries the victim's sender_id but is necessarily
    signed with the cheater's key — signature verification at the receiver
    is the defence.
    """

    name = "spoof"

    def __init__(self, victim_id: int, cheat_rate: float = 0.05, seed: int = 0) -> None:
        super().__init__(cheat_rate=cheat_rate, seed=seed)
        self.victim_id = victim_id
        self._sequence = 5_000_000
        self.snapshot_source = None  # harness: frame -> victim AvatarSnapshot
        self.proxy_lookup = None

    def extra_messages(self, frame: int) -> list[tuple[GameMessage, int]]:
        if self.snapshot_source is None or self.proxy_lookup is None:
            return []
        if not self._roll():
            return []
        snapshot = self.snapshot_source(frame)
        if snapshot is None:
            self.log.record_honest()
            return []
        self.log.record_cheat(frame)
        self._sequence += 1
        forged = StateUpdate(
            sender_id=self.victim_id,
            frame=frame,
            sequence=self._sequence,
            snapshot=snapshot,
        )
        return [(forged, self.proxy_lookup(frame))]


class ConsistencyCheat(CheatBehaviour):
    """Tell different players different things about one's own position.

    In Watchmen all updates flow through the proxy, so the only way to be
    inconsistent is to *also* send direct (conflicting) updates to chosen
    players — which receivers flag as proxy-bypassing traffic.
    """

    name = "consistency"

    def __init__(
        self, direct_victims: list[int], cheat_rate: float = 0.10, seed: int = 0
    ) -> None:
        super().__init__(cheat_rate=cheat_rate, seed=seed)
        if not direct_victims:
            raise ValueError("need victims for direct sends")
        self.direct_victims = list(direct_victims)
        self._sequence = 6_000_000

    def filter_outgoing(
        self, frame: int, message: GameMessage, destination: int
    ) -> list[tuple[GameMessage, int]]:
        sends = [(message, destination)]
        if isinstance(message, StateUpdate) and self._roll():
            self.log.record_cheat(frame)
            self._sequence += 1
            lied_position = message.snapshot.position + Vec3(
                self.rng.uniform(-400.0, 400.0),
                self.rng.uniform(-400.0, 400.0),
                0.0,
            )
            lie = replace(
                message,
                sequence=self._sequence,
                snapshot=replace(message.snapshot, position=lied_position),
            )
            sends.append((lie, self.rng.choice(self.direct_victims)))
        return sends
