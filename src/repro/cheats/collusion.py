"""Coalitions: worst-case information pooling among colluding cheaters.

"This is a worst case scenario as we assume all colluding players work
together and any information available to one cheating player is
immediately available to all colluding partners."

:class:`Coalition` joins per-member info levels through
:func:`~repro.core.disclosure.coalition_category`; the sampling helpers
draw random coalitions of a given size, which is how the Figure 4/5 curves
are averaged.
"""

from __future__ import annotations

from random import Random

from repro.baselines.base import DisseminationModel
from repro.core.disclosure import (
    ExposureHistogram,
    coalition_category,
)

__all__ = ["Coalition", "sample_coalitions"]


class Coalition:
    """A fixed set of colluding players."""

    def __init__(self, members: set[int]) -> None:
        if not members:
            raise ValueError("a coalition needs at least one member")
        self.members = frozenset(members)

    def __len__(self) -> int:
        return len(self.members)

    def joint_category(self, model: DisseminationModel, subject_id: int) -> str:
        """The coalition's joint knowledge category about one honest player.

        Assumes ``model.prepare_frame`` has been called for the frame.
        """
        if subject_id in self.members:
            raise ValueError("subject must be an honest player")
        levels = [
            model.info_level(member, subject_id) for member in self.members
        ]
        return coalition_category(levels)

    def frame_histogram(
        self, model: DisseminationModel, all_players: list[int]
    ) -> ExposureHistogram:
        """Exposure categories over all honest players for one frame."""
        histogram = ExposureHistogram.empty()
        for subject in all_players:
            if subject in self.members:
                continue
            histogram.add(self.joint_category(model, subject))
        return histogram


def sample_coalitions(
    players: list[int], size: int, count: int, seed: int = 0
) -> list[Coalition]:
    """Draw ``count`` random coalitions of ``size`` members (no duplicates
    within a coalition; coalitions may repeat for small populations)."""
    if size < 1 or size > len(players):
        raise ValueError("coalition size out of range")
    rng = Random(seed)
    return [Coalition(set(rng.sample(players, size))) for _ in range(count)]
