"""Disruption-of-information-flow cheats (Table I, first block).

- :class:`EscapingCheat` — terminate the connection to dodge an imminent
  loss (go silent permanently after a trigger frame);
- :class:`TimeCheat` (look-ahead) — delay own updates to act on others'
  information first;
- :class:`FastRateCheat` — emit game events faster than the game can
  generate them;
- :class:`SuppressCorrectCheat` — drop consecutive updates, then send a
  (teleported) update afterwards;
- :class:`BlindOpponentCheat` — drop updates so opponents cannot see the
  cheater (in Watchmen the proxy is the one dissemination path, so the
  cheat can only starve *everyone* — which the proxy's rate checks see);
- :class:`NetworkFloodCheat` — flood a victim with duplicated traffic
  (prevented structurally by distribution; we model it to measure the
  blast radius).
"""

from __future__ import annotations

from dataclasses import replace

from repro.cheats.base import CheatBehaviour
from repro.core.messages import GameMessage, StateUpdate
from repro.game.vector import Vec3

__all__ = [
    "EscapingCheat",
    "TimeCheat",
    "FastRateCheat",
    "SuppressCorrectCheat",
    "BlindOpponentCheat",
    "NetworkFloodCheat",
]


class EscapingCheat(CheatBehaviour):
    """Go silent from ``escape_frame`` on (pull the plug before dying)."""

    name = "escaping"

    def __init__(self, escape_frame: int, seed: int = 0) -> None:
        super().__init__(cheat_rate=1.0, seed=seed)
        self.escape_frame = escape_frame

    def filter_outgoing(
        self, frame: int, message: GameMessage, destination: int
    ) -> list[tuple[GameMessage, int]]:
        if frame >= self.escape_frame:
            self.log.record_cheat(frame)
            return []
        self.log.record_honest()
        return [(message, destination)]


class TimeCheat(CheatBehaviour):
    """Look-ahead: hold own updates back ``delay_frames`` before sending.

    The cheater sees everyone's frame-f state before committing his own
    frame-f actions.  Updates come out stamped with their original frame
    but physically late — the proxy's skew check is built for exactly this.
    """

    name = "time-cheat"

    def __init__(self, delay_frames: int = 10, seed: int = 0) -> None:
        super().__init__(cheat_rate=1.0, seed=seed)
        if delay_frames < 1:
            raise ValueError("delay_frames must be at least 1")
        self.delay_frames = delay_frames
        self._held: list[tuple[int, GameMessage, int]] = []

    def filter_outgoing(
        self, frame: int, message: GameMessage, destination: int
    ) -> list[tuple[GameMessage, int]]:
        self._held.append((frame + self.delay_frames, message, destination))
        self.log.record_cheat(frame)
        return []

    def extra_messages(self, frame: int) -> list[tuple[GameMessage, int]]:
        due = [(m, d) for release, m, d in self._held if release <= frame]
        self._held = [
            (release, m, d) for release, m, d in self._held if release > frame
        ]
        return due


class FastRateCheat(CheatBehaviour):
    """Send each state update ``multiplier`` times (inflated event rate)."""

    name = "fast-rate"

    def __init__(self, multiplier: int = 3, cheat_rate: float = 1.0, seed: int = 0) -> None:
        super().__init__(cheat_rate=cheat_rate, seed=seed)
        if multiplier < 2:
            raise ValueError("multiplier must be at least 2")
        self.multiplier = multiplier
        self._extra_sequence = 1_000_000  # fabricated sequence space

    def filter_outgoing(
        self, frame: int, message: GameMessage, destination: int
    ) -> list[tuple[GameMessage, int]]:
        if not isinstance(message, StateUpdate) or not self._roll():
            return [(message, destination)]
        self.log.record_cheat(frame)
        copies = [(message, destination)]
        for _ in range(self.multiplier - 1):
            self._extra_sequence += 1
            copies.append(
                (replace(message, sequence=self._extra_sequence), destination)
            )
        return copies


class SuppressCorrectCheat(CheatBehaviour):
    """Drop ``burst_length`` consecutive updates, then "correct" position.

    While suppressed the avatar keeps moving; the update that ends the
    burst teleports it to wherever is most convenient (we offset it by the
    suppressed travel, doubled — the classic warp-out-of-danger move).
    """

    name = "suppress-correct"

    def __init__(
        self, burst_length: int = 8, cheat_rate: float = 0.05, seed: int = 0
    ) -> None:
        super().__init__(cheat_rate=cheat_rate, seed=seed)
        self.burst_length = burst_length
        self._suppressing_until = -1
        self._suppressed_from: Vec3 | None = None

    def filter_outgoing(
        self, frame: int, message: GameMessage, destination: int
    ) -> list[tuple[GameMessage, int]]:
        if not isinstance(message, StateUpdate):
            return [(message, destination)]
        if frame < self._suppressing_until:
            self.log.record_cheat(frame)
            self._suppressed_from = self._suppressed_from or message.snapshot.position
            return []
        if self._suppressed_from is not None:
            # End of burst: send the "corrected" (warped) update.
            origin = self._suppressed_from
            self._suppressed_from = None
            warped = origin + (message.snapshot.position - origin) * 2.0
            snapshot = replace(message.snapshot, position=warped)
            self.log.record_cheat(frame)
            return [(replace(message, snapshot=snapshot), destination)]
        if self._roll():
            self._suppressing_until = frame + self.burst_length
            self._suppressed_from = message.snapshot.position
            self.log.record_cheat(frame)
            return []
        return [(message, destination)]


class BlindOpponentCheat(CheatBehaviour):
    """Drop own state updates with ``cheat_rate`` (opponents lose sight)."""

    name = "blind-opponent"

    def __init__(self, cheat_rate: float = 0.5, seed: int = 0) -> None:
        super().__init__(cheat_rate=cheat_rate, seed=seed)

    def filter_outgoing(
        self, frame: int, message: GameMessage, destination: int
    ) -> list[tuple[GameMessage, int]]:
        if isinstance(message, StateUpdate) and self._roll():
            self.log.record_cheat(frame)
            return []
        return [(message, destination)]


class NetworkFloodCheat(CheatBehaviour):
    """Duplicate every outgoing message ``amplification`` times at a victim."""

    name = "network-flood"

    def __init__(self, victim_id: int, amplification: int = 10, seed: int = 0) -> None:
        super().__init__(cheat_rate=1.0, seed=seed)
        if amplification < 1:
            raise ValueError("amplification must be positive")
        self.victim_id = victim_id
        self.amplification = amplification
        self._extra_sequence = 2_000_000

    def filter_outgoing(
        self, frame: int, message: GameMessage, destination: int
    ) -> list[tuple[GameMessage, int]]:
        self.log.record_cheat(frame)
        flood = [(message, destination)]
        for _ in range(self.amplification):
            self._extra_sequence += 1
            try:
                forged = replace(message, sequence=self._extra_sequence)
            except TypeError:  # message without a sequence field
                forged = message
            flood.append((forged, self.victim_id))
        return flood
