"""Unauthorized-access probes: sniffing, maphack, rate analysis.

These cheats are *prevented* rather than detected: Watchmen minimises what
reaches a player's machine, so there is nothing useful to sniff.  The
probes below quantify exactly that — they are measurement instruments over
a dissemination model, not behaviours:

- :class:`SniffingProbe` — what fraction of the game state is present in
  the cheater's inbound traffic at all (a packet sniffer's ceiling);
- :class:`MaphackProbe` — of the players *not* legitimately visible, how
  many could a wallhack renderer draw with fresh coordinates;
- :class:`RateAnalysisProbe` — could the cheater infer who is targeting
  him purely from per-sender inbound rates (defeated by proxy
  indirection: every inbound byte has the same immediate sender)?
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.base import DisseminationModel
from repro.core.disclosure import InfoLevel

__all__ = ["SniffingProbe", "MaphackProbe", "RateAnalysisProbe", "ProbeResult"]


@dataclass(frozen=True, slots=True)
class ProbeResult:
    """Outcome of one probe over one frame."""

    cheater_id: int
    exposed: int  # players the probe could exploit
    total: int  # honest players considered

    @property
    def fraction(self) -> float:
        return self.exposed / self.total if self.total else 0.0


class SniffingProbe:
    """Counts players about whom *any* state beyond position arrives."""

    def measure(
        self, model: DisseminationModel, cheater_id: int, players: list[int]
    ) -> ProbeResult:
        exposed = 0
        total = 0
        for subject in players:
            if subject == cheater_id:
                continue
            total += 1
            level = model.info_level(cheater_id, subject)
            if level in (
                InfoLevel.COMPLETE,
                InfoLevel.FREQUENT,
                InfoLevel.DEAD_RECKONING,
            ):
                exposed += 1
        return ProbeResult(cheater_id=cheater_id, exposed=exposed, total=total)


class MaphackProbe:
    """Counts invisible players the cheater still has fresh coordinates for.

    ``visible`` must be the set the cheater could legitimately render
    (his occlusion-culled vision).  A maphack exploits precise positions
    of players outside that set — i.e. FREQUENT/DR/COMPLETE info about
    invisible players.  Infrequent (1 Hz, position-only) data is what the
    architecture deliberately leaves: too stale to aim with.
    """

    def measure(
        self,
        model: DisseminationModel,
        cheater_id: int,
        players: list[int],
        visible: frozenset[int],
    ) -> ProbeResult:
        exposed = 0
        total = 0
        for subject in players:
            if subject == cheater_id or subject in visible:
                continue
            total += 1
            level = model.info_level(cheater_id, subject)
            if level in (
                InfoLevel.COMPLETE,
                InfoLevel.FREQUENT,
                InfoLevel.DEAD_RECKONING,
            ):
                exposed += 1
        return ProbeResult(cheater_id=cheater_id, exposed=exposed, total=total)


class RateAnalysisProbe:
    """Can inbound-rate analysis reveal who is watching the cheater?

    ``inbound_sources(cheater)`` maps immediate datagram sources to
    counts.  Under Watchmen every update about player X arrives from X's
    *proxy*, and subscriptions to the cheater are handled by the
    *cheater's own proxy* without telling him — so inbound rates carry no
    information about subscribers.  Under a direct-subscription system the
    per-source rate is exactly the subscriber signal.
    """

    def measure(
        self,
        cheater_id: int,
        inbound_counts: dict[int, int],
        true_subscribers: frozenset[int],
    ) -> ProbeResult:
        """How many true subscribers are identifiable as high-rate sources?"""
        if not true_subscribers:
            return ProbeResult(cheater_id=cheater_id, exposed=0, total=0)
        if not inbound_counts:
            return ProbeResult(
                cheater_id=cheater_id, exposed=0, total=len(true_subscribers)
            )
        mean_rate = sum(inbound_counts.values()) / len(inbound_counts)
        high_rate_sources = {
            source for source, count in inbound_counts.items() if count > mean_rate
        }
        identified = len(high_rate_sources & true_subscribers)
        return ProbeResult(
            cheater_id=cheater_id,
            exposed=identified,
            total=len(true_subscribers),
        )
