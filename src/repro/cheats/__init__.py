"""Cheat-injection framework covering every Table I cheat."""

from repro.cheats.base import CheatBehaviour, CheatLog
from repro.cheats.collusion import Coalition, sample_coalitions
from repro.cheats.flow import (
    BlindOpponentCheat,
    EscapingCheat,
    FastRateCheat,
    NetworkFloodCheat,
    SuppressCorrectCheat,
    TimeCheat,
)
from repro.cheats.info import (
    MaphackProbe,
    ProbeResult,
    RateAnalysisProbe,
    SniffingProbe,
)
from repro.cheats.state import (
    AimbotCheat,
    BogusSubscriptionCheat,
    ConsistencyCheat,
    FakeKillCheat,
    GuidanceLieCheat,
    ReplayCheat,
    SpeedHack,
    SpoofCheat,
    TeleportCheat,
)

__all__ = [
    "AimbotCheat",
    "BlindOpponentCheat",
    "BogusSubscriptionCheat",
    "CheatBehaviour",
    "CheatLog",
    "Coalition",
    "ConsistencyCheat",
    "EscapingCheat",
    "FakeKillCheat",
    "FastRateCheat",
    "GuidanceLieCheat",
    "MaphackProbe",
    "NetworkFloodCheat",
    "ProbeResult",
    "RateAnalysisProbe",
    "ReplayCheat",
    "SniffingProbe",
    "SpeedHack",
    "SpoofCheat",
    "SuppressCorrectCheat",
    "TeleportCheat",
    "TimeCheat",
    "sample_coalitions",
]
