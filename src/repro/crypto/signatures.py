"""Message signatures: EC-Schnorr (real) and truncated-HMAC (fast).

"To prevent proxies from tampering with the messages they forward ...
Watchmen uses lightweight (i.e., 100 bits while state update messages are
700 bits on average) digital signatures, and each player verifies the
digital signature of the messages it receives.  This also prevents
replaying and spoofing."

Two interchangeable signers implement the ``Signer`` protocol:

- :class:`SchnorrSigner` — a real public-key scheme: Schnorr signatures
  over secp256k1, implemented from scratch (pure Python big-int group
  arithmetic).  Used in tests/examples and wherever genuine asymmetry
  matters.
- :class:`HmacSigner` — a keyed-MAC scheme truncated to ``signature_bits``
  (default 100, the paper's figure) against a trusted key registry.  It is
  orders of magnitude faster and is the default inside large simulations,
  where the registry stands in for the PKI the game lobby would provide.

Both reject tampered payloads, wrong-sender spoofing, and (together with
the sequence numbers carried by the protocol layer) replays.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

__all__ = [
    "Signature",
    "SigningError",
    "SchnorrKeyPair",
    "SchnorrSigner",
    "HmacKeyRegistry",
    "HmacSigner",
]


class SigningError(ValueError):
    """Raised for malformed keys or signing misuse."""


@dataclass(frozen=True, slots=True)
class Signature:
    """A detached signature plus its nominal wire size."""

    scheme: str
    signer_id: int
    data: bytes

    @property
    def bits(self) -> int:
        return len(self.data) * 8


# ---------------------------------------------------------------------------
# secp256k1 group arithmetic (from scratch)
# ---------------------------------------------------------------------------

_P = 2**256 - 2**32 - 977
_N = 0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEBAAEDCE6AF48A03BBFD25E8CD0364141
_GX = 0x79BE667EF9DCBBAC55A06295CE870B07029BFCDB2DCE28D959F2815B16F81798
_GY = 0x483ADA7726A3C4655DA4FBFC0E1108A8FD17B448A68554199C47D08FFB10D4B8

_Point = tuple[int, int] | None  # None is the point at infinity


def _point_add(a: _Point, b: _Point) -> _Point:
    if a is None:
        return b
    if b is None:
        return a
    ax, ay = a
    bx, by = b
    if ax == bx and (ay + by) % _P == 0:
        return None
    if a == b:
        slope = (3 * ax * ax) * pow(2 * ay, _P - 2, _P) % _P
    else:
        slope = (by - ay) * pow(bx - ax, _P - 2, _P) % _P
    x = (slope * slope - ax - bx) % _P
    y = (slope * (ax - x) - ay) % _P
    return (x, y)


def _point_mul(k: int, point: _Point) -> _Point:
    result: _Point = None
    addend = point
    k %= _N
    while k:
        if k & 1:
            result = _point_add(result, addend)
        addend = _point_add(addend, addend)
        k >>= 1
    return result


def _hash_to_int(*parts: bytes) -> int:
    digest = hashlib.sha256(b"".join(parts)).digest()
    return int.from_bytes(digest, "big") % _N


def _encode_point(point: _Point) -> bytes:
    if point is None:
        return b"\x00" * 33
    x, y = point
    prefix = b"\x03" if y & 1 else b"\x02"
    return prefix + x.to_bytes(32, "big")


@dataclass(frozen=True)
class SchnorrKeyPair:
    """A secp256k1 keypair.  ``generate`` derives keys from a seed."""

    secret: int
    public: tuple[int, int]

    @staticmethod
    def generate(seed: bytes) -> "SchnorrKeyPair":
        if not seed:
            raise SigningError("seed must be non-empty")
        secret = (
            int.from_bytes(hashlib.sha256(b"watchmen-key" + seed).digest(), "big")
            % (_N - 1)
        ) + 1
        public = _point_mul(secret, (_GX, _GY))
        assert public is not None
        return SchnorrKeyPair(secret=secret, public=public)


class SchnorrSigner:
    """Schnorr signatures over secp256k1 with per-player keypairs.

    Sign: deterministic nonce k = H(secret‖m); R = kG; e = H(R‖P‖m);
    s = k + e·d (mod n).  Verify: sG == R + eP.
    """

    scheme = "schnorr-secp256k1"

    def __init__(self) -> None:
        self._keys: dict[int, SchnorrKeyPair] = {}
        self._public: dict[int, tuple[int, int]] = {}

    def register(self, player_id: int, seed: bytes | None = None) -> SchnorrKeyPair:
        """Create (or re-derive) and publish a keypair for ``player_id``."""
        pair = SchnorrKeyPair.generate(
            seed if seed is not None else player_id.to_bytes(8, "big")
        )
        self._keys[player_id] = pair
        self._public[player_id] = pair.public
        return pair

    def sign(self, player_id: int, message: bytes) -> Signature:
        pair = self._keys.get(player_id)
        if pair is None:
            raise SigningError(f"no keypair registered for player {player_id}")
        k = (
            int.from_bytes(
                hashlib.sha256(
                    pair.secret.to_bytes(32, "big") + message
                ).digest(),
                "big",
            )
            % (_N - 1)
        ) + 1
        r_point = _point_mul(k, (_GX, _GY))
        e = _hash_to_int(_encode_point(r_point), _encode_point(pair.public), message)
        s = (k + e * pair.secret) % _N
        data = _encode_point(r_point) + s.to_bytes(32, "big")
        return Signature(scheme=self.scheme, signer_id=player_id, data=data)

    # repro-taint: sanitizer
    def verify(self, player_id: int, message: bytes, signature: Signature) -> bool:
        if signature.scheme != self.scheme or signature.signer_id != player_id:
            return False
        public = self._public.get(player_id)
        if public is None or len(signature.data) != 65:
            return False
        r_encoded, s_bytes = signature.data[:33], signature.data[33:]
        s = int.from_bytes(s_bytes, "big")
        if not 0 < s < _N:
            return False
        r_point = self._decode_point(r_encoded)
        e = _hash_to_int(r_encoded, _encode_point(public), message)
        left = _point_mul(s, (_GX, _GY))
        right = _point_add(r_point, _point_mul(e, public))
        return left == right

    @staticmethod
    def _decode_point(encoded: bytes) -> _Point:
        if encoded == b"\x00" * 33:
            return None
        prefix, x = encoded[0], int.from_bytes(encoded[1:], "big")
        if prefix not in (2, 3) or x >= _P:
            return None
        y_squared = (pow(x, 3, _P) + 7) % _P
        y = pow(y_squared, (_P + 1) // 4, _P)
        if y * y % _P != y_squared:
            return None
        if (y & 1) != (prefix & 1):
            y = _P - y
        return (x, y)


# ---------------------------------------------------------------------------
# Fast truncated-HMAC signer
# ---------------------------------------------------------------------------


class HmacKeyRegistry:
    """Derives and stores per-player MAC keys (the simulated lobby PKI)."""

    def __init__(self, master_seed: bytes = b"watchmen-registry") -> None:
        if not master_seed:
            raise SigningError("master_seed must be non-empty")
        self.master_seed = master_seed
        self._keys: dict[int, bytes] = {}

    def key_for(self, player_id: int) -> bytes:
        key = self._keys.get(player_id)
        if key is None:
            key = hashlib.sha256(
                self.master_seed + player_id.to_bytes(8, "big")
            ).digest()
            self._keys[player_id] = key
        return key


class HmacSigner:
    """Truncated HMAC-SHA256 'signatures' (default 100 bits, the paper's size)."""

    scheme = "hmac-sha256"

    def __init__(
        self,
        registry: HmacKeyRegistry | None = None,
        signature_bits: int = 100,
    ) -> None:
        if signature_bits < 32 or signature_bits > 256:
            raise SigningError("signature_bits must be within [32, 256]")
        self.registry = registry or HmacKeyRegistry()
        self.signature_bits = signature_bits
        self._size_bytes = (signature_bits + 7) // 8

    def register(self, player_id: int, seed: bytes | None = None) -> None:
        """Provided for interface parity; keys are derived on demand."""
        del seed
        self.registry.key_for(player_id)

    def sign(self, player_id: int, message: bytes) -> Signature:
        mac = hmac.new(
            self.registry.key_for(player_id), message, hashlib.sha256
        ).digest()
        return Signature(
            scheme=self.scheme,
            signer_id=player_id,
            data=mac[: self._size_bytes],
        )

    # repro-taint: sanitizer
    def verify(self, player_id: int, message: bytes, signature: Signature) -> bool:
        if signature.scheme != self.scheme or signature.signer_id != player_id:
            return False
        expected = self.sign(player_id, message)
        return hmac.compare_digest(expected.data, signature.data)
