"""Cryptographic substrate: verifiable PRNG and message signatures."""

from repro.crypto.prng import VerifiablePrng, draw_uint
from repro.crypto.signatures import (
    HmacKeyRegistry,
    HmacSigner,
    SchnorrKeyPair,
    SchnorrSigner,
    Signature,
    SigningError,
)

__all__ = [
    "HmacKeyRegistry",
    "HmacSigner",
    "SchnorrKeyPair",
    "SchnorrSigner",
    "Signature",
    "SigningError",
    "VerifiablePrng",
    "draw_uint",
]
