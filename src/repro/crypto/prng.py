"""Verifiable pseudo-random generators for the proxy schedule.

"Each player maintains a pseudo-random number generator for each player,
including himself, initialized with the player's id and a common seed.
This means each player can determine both its own proxy and the other
players' proxies, in any given frame, without the need for communication."

The generator must therefore be (a) identical across implementations given
(common_seed, player_id), and (b) non-malleable — no player should be able
to steer his own draws.  We use SHA-256 in counter mode, which gives both:
draw *i* for player *p* is ``SHA256(seed || p || i)``, so anyone can verify
any draw of any player independently.
"""

from __future__ import annotations

import hashlib
import struct

__all__ = ["VerifiablePrng", "draw_uint"]


def draw_uint(common_seed: bytes, player_id: int, counter: int) -> int:  # repro-taint: sanitizer
    """The canonical draw: a 64-bit uint from SHA256(seed‖player‖counter).

    This is a pure function — any node can recompute any other node's draw,
    which is what makes proxy assignments *verifiable*.
    """
    if player_id < 0 or counter < 0:
        raise ValueError("player_id and counter must be non-negative")
    digest = hashlib.sha256(
        common_seed + struct.pack(">QQ", player_id, counter)
    ).digest()
    return int.from_bytes(digest[:8], "big")


class VerifiablePrng:
    """A stateful view over :func:`draw_uint` for one player id."""

    def __init__(self, common_seed: bytes, player_id: int, counter: int = 0) -> None:
        if not common_seed:
            raise ValueError("common_seed must be non-empty")
        self.common_seed = common_seed
        self.player_id = player_id
        self.counter = counter

    def next_uint(self) -> int:
        value = draw_uint(self.common_seed, self.player_id, self.counter)
        self.counter += 1
        return value

    def uint_at(self, counter: int) -> int:
        """Stateless access to draw ``counter`` (verification path)."""
        return draw_uint(self.common_seed, self.player_id, counter)

    def next_below(self, bound: int) -> int:
        """An unbiased draw in [0, bound) via rejection sampling."""
        if bound <= 0:
            raise ValueError("bound must be positive")
        limit = (1 << 64) - ((1 << 64) % bound)
        while True:
            value = self.next_uint()
            if value < limit:
                return value % bound

    def below_at(self, counter: int, bound: int) -> int:
        """Stateless bounded draw: deterministic given (counter, bound).

        Uses the same rejection rule as :meth:`next_below` but walks
        counters deterministically, so verifiers converge on the same value.
        Note: a rejected counter consumes one draw, hence schedule code must
        use *either* the stateful or the stateless API consistently; the
        proxy schedule uses only this stateless form.
        """
        if bound <= 0:
            raise ValueError("bound must be positive")
        limit = (1 << 64) - ((1 << 64) % bound)
        offset = 0
        while True:
            value = draw_uint(self.common_seed, self.player_id, counter + offset)
            if value < limit:
                return value % bound
            offset += 1
