"""Declarative fault injection for robustness experiments.

The paper's protocol is evaluated on a friendly network; this package
supplies the unfriendly one.  A :class:`FaultSchedule` declares *what goes
wrong when* (crashes, proxy kills, partitions, latency spikes, duplication)
as plain frozen data; a :class:`FaultInjector` executes it against the
simulated transport on a **separate seeded RNG lane**, so a run with an
empty schedule is bit-identical to a run without the injector at all.

Bursty (Gilbert–Elliott) loss is not a fault event but an alternative
network weather model — it lives in
:class:`repro.net.transport.NetworkConfig` (``loss_model="gilbert-elliott"``).
"""

from repro.faults.byzantine import (
    AckWithholdFault,
    ByzantineBehaviour,
    ByzantineFault,
    EquivocationFault,
    FloodFault,
    SelectiveForwardFault,
    TamperFault,
)
from repro.faults.injector import FaultInjector
from repro.faults.schedule import (
    CrashFault,
    CrashProxyFault,
    DuplicateFault,
    FaultSchedule,
    LatencySpikeFault,
    PartitionFault,
)

__all__ = [
    "AckWithholdFault",
    "ByzantineBehaviour",
    "ByzantineFault",
    "CrashFault",
    "CrashProxyFault",
    "DuplicateFault",
    "EquivocationFault",
    "FaultSchedule",
    "FloodFault",
    "LatencySpikeFault",
    "PartitionFault",
    "SelectiveForwardFault",
    "TamperFault",
    "FaultInjector",
]
