"""Chaos harness: a scenario matrix with recovery SLOs.

Each scenario replays the same deterministic trace through the protocol
with one class of fault injected, then distils *recovery* metrics — the
questions an operator would ask after an incident:

- ``false_evictions`` — how many live, honest players got evicted by the
  membership quorum?  The hard SLO is **zero**: faults may degrade views
  but must never cost an innocent player his seat.
- ``frames_to_reproxy`` — after a proxy crash, how long until the slowest
  affected publisher re-routed to a verifiable stand-in?  SLO: at most
  one proxy period.
- ``stale_frac_during`` / ``stale_frac_after`` — fraction of (observer,
  subject) pairs whose rendered view is older than
  :data:`~repro.core.config.STALE_VIEW_AGE_FRAMES` (two missed 1 Hz
  heartbeats), averaged over the fault window and over the run's final
  proxy period.  ``after`` should return to ~0: the damage must heal.
- ``view_error_p95_delta`` — p95 rendered-view error minus the same
  seed's fault-free p95 (shared nearest-rank percentile).

All runs are deterministic: same (players, frames, seed) ⇒ byte-identical
metrics, which is what lets CI gate on them.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random

from repro.core.config import (
    FRAMES_PER_SECOND,
    PROXY_PERIOD_FRAMES,
    STALE_VIEW_AGE_FRAMES,
    WatchmenConfig,
)
from repro.core.protocol import SessionReport, WatchmenSession
from repro.faults.byzantine import (
    AckWithholdFault,
    ByzantineFault,
    EquivocationFault,
    FloodFault,
    SelectiveForwardFault,
    TamperFault,
)
from repro.faults.schedule import (
    CrashFault,
    CrashProxyFault,
    DuplicateFault,
    FaultSchedule,
    LatencySpikeFault,
    PartitionFault,
)
from repro.game.simulator import generate_trace
from repro.game.trace import GameTrace
from repro.net.transport import NetworkConfig

__all__ = [
    "ChaosScenario",
    "ChaosOutcome",
    "default_scenarios",
    "byzantine_scenarios",
    "build_schedule",
    "byzantine_metrics",
    "run_chaos",
]

#: Stride (frames) between view-error samples in chaos runs.
VIEW_ERROR_STRIDE = 5


@dataclass(frozen=True)
class ChaosScenario:
    """One declarative entry of the scenario matrix."""

    name: str
    summary: str
    crash_fraction: float = 0.0
    proxy_kill: bool = False
    partition_seconds: float = 0.0
    burst_loss: bool = False
    duplication_rate: float = 0.0
    latency_spike_ms: float = 0.0
    failover: bool = True
    reliable: bool = True
    #: Adversarial (Byzantine) fault kind, or "" for pure-fault scenarios:
    #: equivocation | tamper | flood | selective_forward | ack_withhold.
    byzantine: str = ""
    #: Run with ``WatchmenConfig.byzantine_hardening`` enabled.
    hardening: bool = False


def default_scenarios() -> tuple[ChaosScenario, ...]:
    """The CI matrix (ISSUE: crash, proxy kill, partition, burst loss)."""
    return (
        ChaosScenario(
            "crash_10pct",
            "crash-stop 10% of the players mid-epoch",
            crash_fraction=0.10,
        ),
        ChaosScenario(
            "proxy_kill_midepoch",
            "kill player 0's proxy mid-epoch (and his next one)",
            proxy_kill=True,
        ),
        ChaosScenario(
            "partition_2s_heal",
            "half/half partition for 2 s, then heal",
            partition_seconds=2.0,
        ),
        ChaosScenario(
            "burst_loss_5pct",
            "Gilbert-Elliott bursty loss (~5% stationary)",
            burst_loss=True,
        ),
        ChaosScenario(
            "flaky_links",
            "latency spikes plus 10% duplication",
            duplication_rate=0.10,
            latency_spike_ms=150.0,
        ),
        ChaosScenario(
            "proxy_kill_no_failover",
            "contrast: the same proxy kill with failover disabled",
            proxy_kill=True,
            failover=False,
            reliable=False,
        ),
    )


def byzantine_scenarios() -> tuple[ChaosScenario, ...]:
    """The adversarial matrix: each attack kind plus a blind contrast.

    Every hardened scenario must detect its attack (SLO: within the
    detection bound) without quarantining a single honest sender; the
    ``_blind`` contrast runs the same equivocation with the hardening
    gate off and must show the attack *landing* — no detection, no
    conviction, the attacker keeps his seat.
    """
    return (
        ChaosScenario(
            "byz_equivocation",
            "one player sends conflicting signed updates per sequence",
            byzantine="equivocation",
            hardening=True,
        ),
        ChaosScenario(
            "byz_equivocation_blind",
            "contrast: the same equivocation with hardening disabled",
            byzantine="equivocation",
            hardening=False,
        ),
        ChaosScenario(
            "byz_tamper_relay",
            "a relaying hop mutates the signed updates it forwards",
            byzantine="tamper",
            hardening=True,
        ),
        ChaosScenario(
            "byz_flood",
            "one player floods three victims with well-formed updates",
            byzantine="flood",
            hardening=True,
        ),
        ChaosScenario(
            "byz_starve",
            "a proxy selectively drops everything bound for one victim",
            byzantine="selective_forward",
            hardening=True,
        ),
    )


def fault_frame_for(frames: int) -> int:
    """Mid-epoch injection point roughly a third into the run."""
    if frames < 3 * PROXY_PERIOD_FRAMES:
        raise ValueError("chaos runs need at least three proxy periods")
    epoch_start = max(
        PROXY_PERIOD_FRAMES,
        (frames // 3) // PROXY_PERIOD_FRAMES * PROXY_PERIOD_FRAMES,
    )
    return epoch_start + PROXY_PERIOD_FRAMES // 2


def build_schedule(
    scenario: ChaosScenario, roster: list[int], frames: int, seed: int
) -> tuple[FaultSchedule, int]:
    """Materialise one scenario's faults for a concrete roster and length."""
    frame = fault_frame_for(frames)
    ordered = sorted(roster)
    crashes: list[CrashFault] = []
    proxy_crashes: list[CrashProxyFault] = []
    partitions: list[PartitionFault] = []
    spikes: list[LatencySpikeFault] = []
    duplications: list[DuplicateFault] = []
    if scenario.crash_fraction > 0.0:
        count = max(1, int(len(ordered) * scenario.crash_fraction))
        rng = Random(seed * 9973 + 17)  # victim choice; independent lane
        crashes = [
            CrashFault(node_id=victim, frame=frame)
            for victim in sorted(rng.sample(ordered, count))
        ]
    if scenario.proxy_kill:
        # Kill the target player's proxy for this epoch AND the next one:
        # without failover that black-holes his traffic for up to ~1.5
        # epochs, which is exactly the outage the failover layer bounds.
        target = ordered[0]
        proxy_crashes = [
            CrashProxyFault(player_id=target, frame=frame),
            CrashProxyFault(player_id=target, frame=frame + PROXY_PERIOD_FRAMES),
        ]
    if scenario.partition_seconds > 0.0:
        window = int(scenario.partition_seconds * FRAMES_PER_SECOND)
        half = len(ordered) // 2
        partitions = [
            PartitionFault(
                group_a=frozenset(ordered[:half]),
                group_b=frozenset(ordered[half:]),
                start_frame=frame,
                end_frame=frame + window,
            )
        ]
    if scenario.latency_spike_ms > 0.0:
        spikes = [
            LatencySpikeFault(
                src=ordered[0],
                dst=ordered[1],
                start_frame=frame,
                end_frame=frame + PROXY_PERIOD_FRAMES,
                extra_ms=scenario.latency_spike_ms,
            )
        ]
    if scenario.duplication_rate > 0.0:
        duplications = [
            DuplicateFault(
                rate=scenario.duplication_rate,
                start_frame=frame,
                end_frame=frame + 2 * PROXY_PERIOD_FRAMES,
            )
        ]
    byzantine: list[ByzantineFault] = []
    if scenario.byzantine:
        # Attacker is ordered[1]: distinct from the proxy-kill target
        # (ordered[0]), who doubles as the selective-forwarding victim.
        attacker = ordered[1]
        if scenario.byzantine == "equivocation":
            byzantine = [
                EquivocationFault(
                    node_id=attacker,
                    start_frame=frame,
                    end_frame=frame + 2 * PROXY_PERIOD_FRAMES,
                )
            ]
        elif scenario.byzantine == "tamper":
            byzantine = [
                TamperFault(
                    node_id=attacker,
                    start_frame=frame,
                    end_frame=frame + 2 * PROXY_PERIOD_FRAMES,
                )
            ]
        elif scenario.byzantine == "flood":
            byzantine = [
                FloodFault(
                    node_id=attacker,
                    victims=frozenset(ordered[2:5]),
                    start_frame=frame,
                    end_frame=frame + PROXY_PERIOD_FRAMES,
                )
            ]
        elif scenario.byzantine == "selective_forward":
            byzantine = [
                SelectiveForwardFault(
                    node_id=attacker,
                    victims=frozenset({ordered[0]}),
                    start_frame=frame,
                    end_frame=frame + 3 * PROXY_PERIOD_FRAMES,
                )
            ]
        elif scenario.byzantine == "ack_withhold":
            byzantine = [
                AckWithholdFault(
                    node_id=attacker,
                    start_frame=frame,
                    end_frame=frame + 3 * PROXY_PERIOD_FRAMES,
                )
            ]
        else:
            raise ValueError(
                f"unknown byzantine fault kind {scenario.byzantine!r}"
            )
    schedule = FaultSchedule(
        crashes=tuple(crashes),
        proxy_crashes=tuple(proxy_crashes),
        partitions=tuple(partitions),
        latency_spikes=tuple(spikes),
        duplications=tuple(duplications),
        byzantine=tuple(byzantine),
        seed=seed,
    )
    return schedule, frame


class _StalenessProbe:
    """Per-frame fraction of live view pairs staler than the heartbeat bound."""

    def __init__(self, session: WatchmenSession, stale_age: int) -> None:
        self.session = session
        self.stale_age = stale_age
        self.samples: list[tuple[int, float]] = []

    def __call__(self, frame: int) -> None:
        session = self.session
        live = [
            player
            for player in session.trace.player_ids()
            if player not in session.crashed
            and not (
                player in session.departures
                and frame >= session.departures[player]
            )
        ]
        total = 0
        stale = 0
        for observer in live:
            known = session.nodes[observer].known
            for subject in live:
                if subject == observer:
                    continue
                total += 1
                snapshot = known.get(subject)
                if snapshot is None or frame - snapshot.frame > self.stale_age:
                    stale += 1
        if total:
            self.samples.append((frame, stale / total))


@dataclass
class ChaosOutcome:
    """One scenario's run artefacts (report + staleness timeline)."""

    scenario: ChaosScenario
    report: SessionReport
    session: WatchmenSession
    staleness: list[tuple[int, float]]
    fault_frame: int


def _run_once(
    trace: GameTrace,
    schedule: FaultSchedule | None,
    *,
    failover: bool,
    reliable: bool,
    burst_loss: bool,
    hardening: bool = False,
) -> tuple[SessionReport, WatchmenSession, list[tuple[int, float]]]:
    config = WatchmenConfig(
        proxy_failover=failover,
        reliable_delivery=reliable,
        byzantine_hardening=hardening,
    )
    if burst_loss:
        network_config = NetworkConfig(
            seed=trace.seed, loss_model="gilbert-elliott"
        )
    else:
        network_config = NetworkConfig(seed=trace.seed)
    session = WatchmenSession(
        trace,
        config=config,
        network_config=network_config,
        faults=schedule,
        view_error_stride=VIEW_ERROR_STRIDE,
    )
    probe = _StalenessProbe(session, STALE_VIEW_AGE_FRAMES)
    session.on_frame_end = probe
    report = session.run()
    return report, session, probe.samples


def _mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def recovery_metrics(
    outcome: ChaosOutcome, frames: int, baseline_p95: float
) -> dict[str, float]:
    """Distil one scenario run into the SLO metrics (all costs)."""
    report = outcome.report
    session = outcome.session
    fault_frame = outcome.fault_frame
    # A Byzantine attacker's eviction is the protocol *working*, never a
    # false eviction — the detector's job is to remove exactly that node.
    legitimately_gone = (
        set(report.crashed) | set(session.departures) | session.byzantine_ids
    )
    falsely_evicted: set[int] = set()
    for node_id, node in session.nodes.items():
        if node_id in legitimately_gone:
            continue
        falsely_evicted |= set(node.membership.removed) - legitimately_gone

    if report.crashed:
        events = sorted(
            event_frame
            for node in session.nodes.values()
            for (event_frame, _, _) in node.failover_events
            if event_frame >= fault_frame
        )
        if events:
            in_window = [
                f for f in events if f < fault_frame + PROXY_PERIOD_FRAMES
            ]
            slowest = max(in_window) if in_window else max(events)
            frames_to_reproxy = slowest - fault_frame
        else:
            frames_to_reproxy = frames - fault_frame  # never re-routed
    else:
        frames_to_reproxy = 0

    during = [
        sample
        for frame, sample in outcome.staleness
        if fault_frame <= frame < fault_frame + 2 * PROXY_PERIOD_FRAMES
    ]
    after = [
        sample
        for frame, sample in outcome.staleness
        if frame >= frames - PROXY_PERIOD_FRAMES
    ]
    stats = report.view_error_stats()
    return {
        "false_evictions": float(len(falsely_evicted)),
        "frames_to_reproxy": float(frames_to_reproxy),
        "stale_frac_during": _mean(during),
        "stale_frac_peak": max(during, default=0.0),
        "stale_frac_after": _mean(after),
        "view_error_p95_delta": stats.get("p95", 0.0) - baseline_p95,
        "messages_lost": float(report.messages_lost),
    }


def _first_detection_frame(
    session: WatchmenSession, kind: str
) -> int | None:
    """Earliest frame any node registered the attack's detection signal."""
    frames: list[int] = []
    for node in session.nodes.values():
        if kind == "equivocation":
            frames.extend(frame for frame, _ in node.equivocation_events)
        elif kind == "flood":
            frames.extend(frame for frame, _ in node.quarantine_events)
        elif kind == "tamper":
            frames.extend(
                frame
                for frame, _, label in node.suspicion_events
                if label == "tamper_hop"
            )
        elif kind in ("selective_forward", "ack_withhold"):
            wanted = (
                "starvation" if kind == "selective_forward" else "ack_withhold"
            )
            frames.extend(
                frame
                for frame, _, label in node.suspicion_events
                if label == wanted
            )
    return min(frames, default=None)


def byzantine_metrics(outcome: ChaosOutcome) -> dict[str, float]:
    """Attack-specific SLO metrics for one Byzantine scenario run."""
    session = outcome.session
    report = outcome.report
    detection = _first_detection_frame(session, outcome.scenario.byzantine)
    if detection is None:
        detection_frames = float(report.num_frames)  # sentinel: never seen
    else:
        detection_frames = float(max(0, detection - outcome.fault_frame))
    honest_quarantines = sum(
        1
        for node in session.nodes.values()
        for _, src in node.quarantine_events
        if src not in session.byzantine_ids
    )
    gone = set(report.crashed) | set(session.departures)
    honest_live = [
        node
        for node_id, node in session.nodes.items()
        if node_id not in session.byzantine_ids and node_id not in gone
    ]
    attacker_evicted = all(
        session.byzantine_ids <= node.membership.removed for node in honest_live
    )
    return {
        "byz_detection_frames": detection_frames,
        "honest_quarantines": float(honest_quarantines),
        "equivocations_detected": float(report.equivocations_detected),
        "evidence_convictions": float(report.evidence_convictions),
        "attacker_evicted": 1.0 if attacker_evicted else 0.0,
    }


def run_chaos(
    players: int = 16,
    frames: int = 400,
    seed: int = 7,
    scenarios: tuple[ChaosScenario, ...] | None = None,
) -> list[dict[str, object]]:
    """Run the matrix; one result dict per scenario (bench-row shaped)."""
    matrix = scenarios if scenarios is not None else default_scenarios()
    trace = generate_trace(num_players=players, num_frames=frames, seed=seed)
    baseline_report, _, _ = _run_once(
        trace, None, failover=True, reliable=True, burst_loss=False
    )
    baseline_p95 = baseline_report.view_error_stats().get("p95", 0.0)

    results: list[dict[str, object]] = []
    for scenario in matrix:
        schedule, fault_frame = build_schedule(
            scenario, trace.player_ids(), frames, seed
        )
        report, session, staleness = _run_once(
            trace,
            schedule,
            failover=scenario.failover,
            reliable=scenario.reliable,
            burst_loss=scenario.burst_loss,
            hardening=scenario.hardening,
        )
        outcome = ChaosOutcome(
            scenario=scenario,
            report=report,
            session=session,
            staleness=staleness,
            fault_frame=fault_frame,
        )
        metrics = recovery_metrics(outcome, frames, baseline_p95)
        if scenario.byzantine:
            metrics.update(byzantine_metrics(outcome))
        results.append(
            {
                "scenario": scenario.name,
                "summary": scenario.summary,
                "params": {
                    "players": players,
                    "frames": frames,
                    "seed": seed,
                    "failover": scenario.failover,
                    "reliable": scenario.reliable,
                    "byzantine": scenario.byzantine,
                    "hardening": scenario.hardening,
                },
                "metrics": metrics,
            }
        )
    return results
