"""Byzantine faults: designated nodes turn *adversarial*, not just dead.

PR 4's fault vocabulary stops at benign failures (crashes, partitions,
loss); this module supplies the malicious tier the paper's threat model
actually targets.  Each fault entry is frozen declarative data keyed by
a frame window, carried in :class:`~repro.faults.schedule.FaultSchedule`
(``byzantine=...``), and executed by wrapping the designated node's
:class:`~repro.core.node.NodeBehaviour` — the same injection surface the
cheat layer uses, so tapes, chaos runs and the model checker all inherit
the adversary through the one session construction path.  An empty
``byzantine`` tuple wraps nothing: runs stay bit-identical to a session
with no injector at all.

The attacks:

- :class:`EquivocationFault` — the sender signs *conflicting* state
  updates under one ``(sender_id, sequence)`` to different observers.
  Every copy verifies (the attacker owns the key); only cross-checking
  payload digests across routes can catch it.
- :class:`TamperFault` — a relaying proxy mutates payload fields of
  updates it forwards while keeping the original signature, which
  breaks verification at every receiver.
- :class:`SelectiveForwardFault` — a proxy silently drops traffic for
  victim destinations while behaving normally otherwise (it still acks
  its publisher, who therefore never retries).
- :class:`FloodFault` — a burst of perfectly well-formed, signed,
  fresh-sequence messages at a multiple of the per-link frame budget.
- :class:`AckWithholdFault` — a receiver processes messages but never
  acks them, silently starving the sender's bounded retry ladder.

The config-gated defenses live in ``core/node.py`` / ``core/membership.py``
(``WatchmenConfig(byzantine_hardening=True)``); docs/ROBUSTNESS.md maps
each attack to its detection, response and SLO.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dataclass_replace
from random import Random
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:
    from repro.core.node import NodeBehaviour, WatchmenNode
    from repro.game.avatar import AvatarSnapshot

from repro.core.messages import (
    AckMessage,
    GameMessage,
    PositionUpdate,
    StateUpdate,
)
from repro.game.vector import Vec3

__all__ = [
    "EquivocationFault",
    "TamperFault",
    "SelectiveForwardFault",
    "FloodFault",
    "AckWithholdFault",
    "ByzantineFault",
    "ByzantineBehaviour",
]


def _check_window(start_frame: int, end_frame: int) -> None:
    if start_frame < 0 or end_frame <= start_frame:
        raise ValueError("byzantine window must be non-empty and non-negative")


@dataclass(frozen=True, slots=True)
class EquivocationFault:
    """``node_id`` sends conflicting same-sequence updates to observers.

    The true update goes to the proxy as usual; every other roster
    member receives a correctly signed *variant* with the same sequence
    but a displaced payload.  Whoever sees both copies holds
    self-certifying proof of misbehavior — two validly signed payloads
    under one ``(sender, sequence)``.
    """

    node_id: int
    start_frame: int
    end_frame: int
    #: payload divergence between the two signed stories, in world units
    offset: float = 25.0

    def __post_init__(self) -> None:
        _check_window(self.start_frame, self.end_frame)
        if self.offset <= 0:
            raise ValueError("equivocation offset must be positive")


@dataclass(frozen=True, slots=True)
class TamperFault:
    """``node_id`` mutates relayed state updates, breaking their signature."""

    node_id: int
    start_frame: int
    end_frame: int

    def __post_init__(self) -> None:
        _check_window(self.start_frame, self.end_frame)


@dataclass(frozen=True, slots=True)
class SelectiveForwardFault:
    """``node_id`` drops relayed traffic destined to ``victims``."""

    node_id: int
    victims: frozenset[int]
    start_frame: int
    end_frame: int

    def __post_init__(self) -> None:
        _check_window(self.start_frame, self.end_frame)
        if not self.victims:
            raise ValueError("selective forwarding needs at least one victim")
        if self.node_id in self.victims:
            raise ValueError("a node cannot selectively forward to itself")


@dataclass(frozen=True, slots=True)
class FloodFault:
    """``node_id`` bursts well-formed messages at ``victims`` every frame.

    ``msgs_per_frame`` is the per-victim burst — point it above the
    hardened receivers' token-bucket refill
    (:data:`repro.core.config.BYZANTINE_RATE_MSGS_PER_FRAME`) to model
    an N× budget flood.
    """

    node_id: int
    victims: frozenset[int]
    start_frame: int
    end_frame: int
    msgs_per_frame: int = 64

    def __post_init__(self) -> None:
        _check_window(self.start_frame, self.end_frame)
        if not self.victims:
            raise ValueError("a flood needs at least one victim")
        if self.node_id in self.victims:
            raise ValueError("a node cannot flood itself")
        if self.msgs_per_frame < 1:
            raise ValueError("msgs_per_frame must be at least 1")


@dataclass(frozen=True, slots=True)
class AckWithholdFault:
    """``node_id`` processes ackable messages but never acknowledges them."""

    node_id: int
    start_frame: int
    end_frame: int

    def __post_init__(self) -> None:
        _check_window(self.start_frame, self.end_frame)


ByzantineFault = (
    EquivocationFault
    | TamperFault
    | SelectiveForwardFault
    | FloodFault
    | AckWithholdFault
)


class ByzantineBehaviour:
    """Behaviour wrapper that executes a node's Byzantine fault entries.

    Wraps the node's intended behaviour (honest or a cheat) and applies
    each active fault to the traffic passing through the behaviour
    hooks.  Randomness (victim rotation) draws from a private lane
    derived from the schedule seed and the node id, so adding a
    Byzantine entry never perturbs the network's or the injector's RNG
    streams.

    The session calls :meth:`bind` after constructing the node: floods
    need the node's sequence counter (fresh monotonic sequences keep the
    burst *well-formed* — the attack is volume, not malformation) and
    the equivocation variants need the roster.
    """

    def __init__(
        self,
        inner: "NodeBehaviour",
        faults: tuple[ByzantineFault, ...],
        seed: int,
    ) -> None:
        self.inner = inner
        self.faults = faults
        # Same node, same schedule ⇒ same draws; lane disjoint from the
        # injector's (which seeds Random(schedule.seed) directly).
        self.rng = Random(seed * 7919 + 101)
        self._node: "WatchmenNode | None" = None

    def bind(self, node: "WatchmenNode") -> None:
        """Late-bind the wrapped node (sequence lane, roster, snapshots)."""
        self._node = node

    def _active(self, kind: type, frame: int) -> Iterator[ByzantineFault]:
        for fault in self.faults:
            if (
                isinstance(fault, kind)
                and fault.start_frame <= frame < fault.end_frame
            ):
                yield fault

    # ---- NodeBehaviour hooks ---------------------------------------------

    def mutate_snapshot(
        self, frame: int, snapshot: "AvatarSnapshot"
    ) -> "AvatarSnapshot":
        return self.inner.mutate_snapshot(frame, snapshot)

    def filter_outgoing(
        self, frame: int, message: GameMessage, destination: int
    ) -> list[tuple[GameMessage, int]]:
        outgoing = self.inner.filter_outgoing(frame, message, destination)
        node = self._node
        result: list[tuple[GameMessage, int]] = []
        for msg, dest in outgoing:
            own = node is not None and msg.sender_id == node.player_id
            dropped = False
            if not own:
                # Relayed traffic: the proxy-side attacks apply.
                for fault in self._active(SelectiveForwardFault, frame):
                    if dest in fault.victims:
                        dropped = True
                        break
                if dropped:
                    continue
                if isinstance(msg, StateUpdate) and msg.signature is not None:
                    for _ in self._active(TamperFault, frame):
                        # Nudge the relayed pose while keeping the original
                        # signature: the forgery is detectable (signature
                        # breaks) but must be *attributed* to this hop, not
                        # to the framed signer.
                        msg = dataclass_replace(
                            msg,
                            snapshot=dataclass_replace(
                                msg.snapshot,
                                health=max(1, msg.snapshot.health - 1),
                            ),
                        )
                        break
            else:
                if isinstance(msg, AckMessage):
                    if any(True for _ in self._active(AckWithholdFault, frame)):
                        continue
                if (
                    isinstance(msg, StateUpdate)
                    and msg.signature is None
                    and node is not None
                ):
                    for fault in self._active(EquivocationFault, frame):
                        result.append((msg, dest))
                        dropped = True  # original already appended
                        lie = dataclass_replace(
                            msg,
                            snapshot=dataclass_replace(
                                msg.snapshot,
                                position=msg.snapshot.position
                                + Vec3(fault.offset, 0.0, 0.0),
                            ),
                        )
                        # The conflicting story goes everywhere the proxy
                        # is not: each copy is signed with our *real* key
                        # on transmit, so every observer accepts it and
                        # only a cross-route digest check can object.
                        for observer in node.roster:
                            if observer not in (node.player_id, dest):
                                result.append((lie, observer))
                        break
            if not dropped:
                result.append((msg, dest))
        return result

    def extra_messages(self, frame: int) -> list[tuple[GameMessage, int]]:
        extras = list(self.inner.extra_messages(frame))
        node = self._node
        if node is None:
            return extras
        for fault in self._active(FloodFault, frame):
            snapshot = node.known.get(node.player_id)
            if snapshot is None:
                continue
            for victim in sorted(fault.victims):
                for _ in range(fault.msgs_per_frame):
                    extras.append(
                        (
                            PositionUpdate(
                                sender_id=node.player_id,
                                frame=frame,
                                sequence=node._next_sequence(),
                                snapshot=snapshot.position_only(),
                            ),
                            victim,
                        )
                    )
        return extras
