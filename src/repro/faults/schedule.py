"""The declarative fault vocabulary: what goes wrong, and when.

Every fault is a frozen dataclass keyed by simulation frames, so a
schedule is pure data — serialisable, comparable, and independent of the
session it is later injected into.  Frames (not wall-clock seconds) keep
faults aligned with protocol epochs: "kill the proxy mid-epoch" is
``CrashProxyFault(player_id=3, frame=60)`` regardless of frame rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.byzantine import (
    AckWithholdFault,
    ByzantineFault,
    EquivocationFault,
    FloodFault,
    SelectiveForwardFault,
    TamperFault,
)

__all__ = [
    "CrashFault",
    "CrashProxyFault",
    "PartitionFault",
    "LatencySpikeFault",
    "DuplicateFault",
    "FaultSchedule",
]


@dataclass(frozen=True, slots=True)
class CrashFault:
    """Crash-stop: the node falls silent at ``frame`` and never returns."""

    node_id: int
    frame: int

    def __post_init__(self) -> None:
        if self.frame < 0:
            raise ValueError("crash frame must be non-negative")


@dataclass(frozen=True, slots=True)
class CrashProxyFault:
    """Crash whoever is ``player_id``'s proxy at ``frame``.

    The concrete victim depends on the verifiable proxy schedule, so it is
    resolved by :meth:`repro.faults.injector.FaultInjector.resolve` once
    the session's schedule exists — the declaration stays portable across
    seeds and rosters.
    """

    player_id: int
    frame: int

    def __post_init__(self) -> None:
        if self.frame < 0:
            raise ValueError("crash frame must be non-negative")


@dataclass(frozen=True, slots=True)
class PartitionFault:
    """Cut all links between two node groups, then heal.

    Packets crossing the cut during [start_frame, end_frame) are dropped
    with cause ``partition``; traffic inside each group is unaffected.
    """

    group_a: frozenset[int]
    group_b: frozenset[int]
    start_frame: int
    end_frame: int

    def __post_init__(self) -> None:
        if self.start_frame < 0 or self.end_frame <= self.start_frame:
            raise ValueError("partition window must be non-empty and non-negative")
        if self.group_a & self.group_b:
            raise ValueError("partition groups must be disjoint")
        if not self.group_a or not self.group_b:
            raise ValueError("partition groups must be non-empty")

    def severs(self, src: int, dst: int) -> bool:
        return (src in self.group_a and dst in self.group_b) or (
            src in self.group_b and dst in self.group_a
        )


@dataclass(frozen=True, slots=True)
class LatencySpikeFault:
    """Extra one-way delay on a link (both directions when symmetric)."""

    src: int
    dst: int
    start_frame: int
    end_frame: int
    extra_ms: float
    symmetric: bool = True

    def __post_init__(self) -> None:
        if self.start_frame < 0 or self.end_frame <= self.start_frame:
            raise ValueError("spike window must be non-empty and non-negative")
        if self.extra_ms < 0:
            raise ValueError("extra_ms must be non-negative")

    def affects(self, src: int, dst: int) -> bool:
        if (src, dst) == (self.src, self.dst):
            return True
        return self.symmetric and (dst, src) == (self.src, self.dst)


@dataclass(frozen=True, slots=True)
class DuplicateFault:
    """Duplicate each in-flight packet with probability ``rate``.

    The copy arrives ``offset_ms`` after the original — exercising the
    receivers' sequence-based screening under benign duplication.
    """

    rate: float
    start_frame: int
    end_frame: int
    offset_ms: float = 10.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("duplicate rate must be in [0, 1]")
        if self.start_frame < 0 or self.end_frame <= self.start_frame:
            raise ValueError("duplication window must be non-empty and non-negative")
        if self.offset_ms < 0:
            raise ValueError("offset_ms must be non-negative")


@dataclass(frozen=True)
class FaultSchedule:
    """Everything that will go wrong in one run, as pure data.

    ``seed`` feeds the injector's private RNG lane (used only for
    probabilistic faults like duplication), kept separate from the
    network's RNG so adding faults never perturbs fault-free draws.
    """

    crashes: tuple[CrashFault, ...] = ()
    proxy_crashes: tuple[CrashProxyFault, ...] = ()
    partitions: tuple[PartitionFault, ...] = ()
    latency_spikes: tuple[LatencySpikeFault, ...] = ()
    duplications: tuple[DuplicateFault, ...] = ()
    #: adversarial entries (repro.faults.byzantine): designated nodes act
    #: maliciously for a frame window instead of merely failing
    byzantine: tuple[ByzantineFault, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        crashed = [c.node_id for c in self.crashes]
        if len(crashed) != len(set(crashed)):
            raise ValueError("a node may crash at most once")

    def is_empty(self) -> bool:
        return not (
            self.crashes
            or self.proxy_crashes
            or self.partitions
            or self.latency_spikes
            or self.duplications
            or self.byzantine
        )

    def byzantine_for(self, node_id: int) -> tuple[ByzantineFault, ...]:
        """The adversarial entries assigned to one node."""
        return tuple(f for f in self.byzantine if f.node_id == node_id)

    def byzantine_node_ids(self) -> frozenset[int]:
        return frozenset(f.node_id for f in self.byzantine)

    # ---- persistence ------------------------------------------------------
    #
    # A schedule is pure data, so it serializes losslessly; the tape
    # format (:mod:`repro.replay`) embeds the materialised schedule so a
    # recorded chaos run replays with the identical fault plan even if
    # the scenario-building logic later changes.

    def to_json(self) -> dict:
        """JSON-safe dict; inverse of :meth:`from_json`."""
        return {
            "seed": self.seed,
            "crashes": [
                {"node_id": c.node_id, "frame": c.frame} for c in self.crashes
            ],
            "proxy_crashes": [
                {"player_id": c.player_id, "frame": c.frame}
                for c in self.proxy_crashes
            ],
            "partitions": [
                {
                    "group_a": sorted(p.group_a),
                    "group_b": sorted(p.group_b),
                    "start_frame": p.start_frame,
                    "end_frame": p.end_frame,
                }
                for p in self.partitions
            ],
            "latency_spikes": [
                {
                    "src": s.src,
                    "dst": s.dst,
                    "start_frame": s.start_frame,
                    "end_frame": s.end_frame,
                    "extra_ms": s.extra_ms,
                    "symmetric": s.symmetric,
                }
                for s in self.latency_spikes
            ],
            "duplications": [
                {
                    "rate": d.rate,
                    "start_frame": d.start_frame,
                    "end_frame": d.end_frame,
                    "offset_ms": d.offset_ms,
                }
                for d in self.duplications
            ],
            "byzantine": [_byzantine_to_json(b) for b in self.byzantine],
        }

    @staticmethod
    def from_json(data: dict) -> "FaultSchedule":
        """Rebuild a schedule from :meth:`to_json` output."""
        return FaultSchedule(
            crashes=tuple(CrashFault(**row) for row in data.get("crashes", ())),
            proxy_crashes=tuple(
                CrashProxyFault(**row) for row in data.get("proxy_crashes", ())
            ),
            partitions=tuple(
                PartitionFault(
                    group_a=frozenset(row["group_a"]),
                    group_b=frozenset(row["group_b"]),
                    start_frame=row["start_frame"],
                    end_frame=row["end_frame"],
                )
                for row in data.get("partitions", ())
            ),
            latency_spikes=tuple(
                LatencySpikeFault(**row) for row in data.get("latency_spikes", ())
            ),
            duplications=tuple(
                DuplicateFault(**row) for row in data.get("duplications", ())
            ),
            byzantine=tuple(
                _byzantine_from_json(row) for row in data.get("byzantine", ())
            ),
            seed=data.get("seed", 0),
        )


# ---- byzantine (de)serialization -----------------------------------------
#
# One row per entry with a ``kind`` discriminator; victim sets serialize
# sorted so identical schedules produce identical bytes.

_BYZANTINE_KINDS: dict[str, type] = {
    "equivocation": EquivocationFault,
    "tamper": TamperFault,
    "selective_forward": SelectiveForwardFault,
    "flood": FloodFault,
    "ack_withhold": AckWithholdFault,
}


def _byzantine_to_json(fault: ByzantineFault) -> dict:
    kind = next(k for k, t in _BYZANTINE_KINDS.items() if type(fault) is t)
    row: dict = {"kind": kind}
    for name in fault.__dataclass_fields__:
        value = getattr(fault, name)
        row[name] = sorted(value) if isinstance(value, frozenset) else value
    return row


def _byzantine_from_json(row: dict) -> ByzantineFault:
    fields = dict(row)
    cls = _BYZANTINE_KINDS[fields.pop("kind")]
    if "victims" in fields:
        fields["victims"] = frozenset(fields["victims"])
    return cls(**fields)
