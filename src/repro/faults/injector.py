"""Executes a :class:`FaultSchedule` against the simulated transport.

The injector is deliberately passive plumbing: the session asks it which
nodes crash this frame, and the network asks it whether a packet crosses a
partition, how much extra delay a link carries, and whether to duplicate a
delivery.  All probabilistic answers come from the injector's **own**
seeded :class:`random.Random` — the network's RNG never sees an extra
draw, so an empty schedule leaves every fault-free run bit-identical.
"""

from __future__ import annotations

from random import Random
from typing import TYPE_CHECKING

from repro.faults.schedule import FaultSchedule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import WatchmenConfig
    from repro.core.proxy import ProxySchedule

__all__ = ["FaultInjector"]


class FaultInjector:
    """One run's executable fault plan (frame-driven)."""

    def __init__(self, schedule: FaultSchedule) -> None:
        self.schedule = schedule
        self.rng = Random(schedule.seed)  # private lane; see module docstring
        self.current_frame = 0
        #: node -> frame it crash-stopped (filled as the run progresses)
        self.crashed: dict[int, int] = {}
        self._crash_frames: dict[int, list[int]] = {}
        for crash in schedule.crashes:
            self._crash_frames.setdefault(crash.frame, []).append(crash.node_id)

    # ---- resolution -------------------------------------------------------

    def resolve(self, proxy_schedule: ProxySchedule, config: WatchmenConfig) -> None:
        """Turn declarative proxy-kill faults into concrete node crashes.

        ``CrashProxyFault(player_id=p, frame=f)`` crashes whoever the
        verifiable schedule assigns as p's proxy during f's epoch.  Called
        once by the session, after its schedule exists.
        """
        for fault in self.schedule.proxy_crashes:
            epoch = config.epoch_of_frame(fault.frame)
            victim = proxy_schedule.proxy_of(fault.player_id, epoch)
            self._crash_frames.setdefault(fault.frame, []).append(victim)

    # ---- frame driving ----------------------------------------------------

    def begin_frame(self, frame: int) -> list[int]:
        """Advance to ``frame``; returns nodes that crash-stop now."""
        self.current_frame = frame
        dying = sorted(
            {
                node
                for node in self._crash_frames.get(frame, ())
                if node not in self.crashed
            }
        )
        for node in dying:
            self.crashed[node] = frame
        return dying

    # ---- network queries --------------------------------------------------

    def drop_cause(self, src: int, dst: int) -> str | None:
        """Why a packet on this link dies right now (None = it lives)."""
        for partition in self.schedule.partitions:
            if (
                partition.start_frame <= self.current_frame < partition.end_frame
                and partition.severs(src, dst)
            ):
                return "partition"
        return None

    def extra_delay_seconds(self, src: int, dst: int) -> float:
        """Active latency-spike delay on this link, in seconds."""
        total_ms = 0.0
        for spike in self.schedule.latency_spikes:
            if (
                spike.start_frame <= self.current_frame < spike.end_frame
                and spike.affects(src, dst)
            ):
                total_ms += spike.extra_ms
        return total_ms / 1000.0

    def duplicate_offset_seconds(self) -> float | None:
        """Duplicate this delivery?  The copy's extra delay, or None.

        Draws from the injector's private RNG only while a duplication
        window is active, so inactive windows cost zero draws.
        """
        for dup in self.schedule.duplications:
            if dup.start_frame <= self.current_frame < dup.end_frame:
                if self.rng.random() < dup.rate:
                    return dup.offset_ms / 1000.0
        return None
