"""Structured bench artifacts and the regression differ CI runs.

Every benchmark run yields rows of one schema::

    {"bench": str, "params": {...}, "metrics": {name: number},
     "wall_seconds": float, "timestamp": "ISO-8601"}

Rows are archived two ways: one ``benchmarks/results/<name>.json`` per
bench (next to the human-readable ``.txt`` block) and an aggregated
top-level ``BENCH_core.json`` capturing the whole run — the perf
trajectory the ROADMAP asks for.  ``repro bench-diff old.json new.json``
compares two such files and exits nonzero when any metric regresses
beyond the threshold.

Convention: **metrics are costs** — bytes, kbps, seconds, counts — so
"higher" means "worse".  ``wall_seconds`` is machine-dependent and is
excluded from the diff unless explicitly requested.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path

__all__ = [
    "BENCH_SCHEMA",
    "MetricDelta",
    "bench_row",
    "diff_rows",
    "format_diff",
    "load_bench_rows",
    "write_bench_json",
]

BENCH_SCHEMA = "repro.bench.v1"

#: Default regression gate: a metric >25 % above its baseline fails CI.
DEFAULT_THRESHOLD = 0.25


def _now_iso() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def bench_row(
    bench: str,
    params: dict | None = None,
    metrics: dict[str, float] | None = None,
    wall_seconds: float | None = None,
    timestamp: str | None = None,
) -> dict:
    """One schema row; fills the timestamp when not supplied."""
    if not bench:
        raise ValueError("bench name must be non-empty")
    return {
        "bench": bench,
        "params": dict(params or {}),
        "metrics": dict(metrics or {}),
        "wall_seconds": wall_seconds,
        "timestamp": timestamp or _now_iso(),
    }


def write_bench_json(
    path: str | Path, rows: list[dict] | dict, generated: str | None = None
) -> Path:
    """Write rows (or a single row) as a schema-stamped artifact.

    ``generated`` overrides the wall-clock stamp — deterministic harnesses
    (``repro chaos``) pin it so two identical runs emit identical bytes.
    """
    if isinstance(rows, dict):
        rows = [rows]
    payload = {
        "schema": BENCH_SCHEMA,
        "generated": generated or _now_iso(),
        "rows": rows,
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def load_bench_rows(path: str | Path) -> dict[str, dict]:
    """Rows keyed by bench name; accepts a row, a list, or a schema file.

    When a file carries several rows for one bench (a trajectory), the
    newest row wins — diffs compare latest-vs-latest.
    """
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if isinstance(data, dict) and "rows" in data:
        rows = data["rows"]
    elif isinstance(data, dict):
        rows = [data]
    elif isinstance(data, list):
        rows = data
    else:
        raise ValueError(f"{path}: not a bench artifact")
    keyed: dict[str, dict] = {}
    for row in rows:
        if not isinstance(row, dict) or "bench" not in row:
            raise ValueError(f"{path}: row without a 'bench' field")
        keyed[row["bench"]] = row  # later rows (newer) overwrite earlier
    return keyed


@dataclass(frozen=True)
class MetricDelta:
    """One metric compared across two runs."""

    bench: str
    metric: str
    old: float
    new: float

    @property
    def relative_change(self) -> float:
        if self.old == 0:
            return float("inf") if self.new > 0 else 0.0
        return (self.new - self.old) / self.old

    def is_regression(self, threshold: float) -> bool:
        return self.relative_change > threshold


def diff_rows(
    old_rows: dict[str, dict],
    new_rows: dict[str, dict],
    threshold: float = DEFAULT_THRESHOLD,
    include_wall: bool = False,
) -> tuple[list[MetricDelta], list[MetricDelta]]:
    """(regressions, others) across the benches both runs share.

    Only numeric metrics present on both sides are compared; benches or
    metrics present on one side only are ignored (new benches must not
    fail the gate retroactively).
    """
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    regressions: list[MetricDelta] = []
    others: list[MetricDelta] = []
    for bench in sorted(set(old_rows) & set(new_rows)):
        old_metrics = dict(old_rows[bench].get("metrics") or {})
        new_metrics = dict(new_rows[bench].get("metrics") or {})
        if include_wall:
            for rows, metrics in ((old_rows, old_metrics), (new_rows, new_metrics)):
                wall = rows[bench].get("wall_seconds")
                if isinstance(wall, (int, float)):
                    metrics["wall_seconds"] = float(wall)
        for metric in sorted(set(old_metrics) & set(new_metrics)):
            old_value, new_value = old_metrics[metric], new_metrics[metric]
            if not isinstance(old_value, (int, float)) or not isinstance(
                new_value, (int, float)
            ):
                continue
            delta = MetricDelta(bench, metric, float(old_value), float(new_value))
            if delta.is_regression(threshold):
                regressions.append(delta)
            else:
                others.append(delta)
    return regressions, others


def format_diff(
    regressions: list[MetricDelta],
    others: list[MetricDelta],
    threshold: float = DEFAULT_THRESHOLD,
) -> str:
    """Human-readable gate report (what CI prints)."""
    lines = [
        f"bench-diff: {len(regressions) + len(others)} shared metrics, "
        f"gate at +{threshold:.0%}"
    ]
    for delta in regressions:
        lines.append(
            f"  REGRESSION {delta.bench}/{delta.metric}: "
            f"{delta.old:g} -> {delta.new:g} ({delta.relative_change:+.1%})"
        )
    improvements = [d for d in others if d.relative_change < -threshold]
    for delta in improvements:
        lines.append(
            f"  improved   {delta.bench}/{delta.metric}: "
            f"{delta.old:g} -> {delta.new:g} ({delta.relative_change:+.1%})"
        )
    if not regressions:
        lines.append("  no regressions beyond the gate")
    return "\n".join(lines)
