"""Unified observability: metrics registry, phase timers, bench artifacts.

See ``docs/OBSERVABILITY.md`` for the registry API, the JSON schemas and
how CI consumes them.  Quick taste::

    from repro.obs import MetricsRegistry
    from repro.core import WatchmenSession

    registry = MetricsRegistry()
    report = WatchmenSession(trace, registry=registry).run()
    print(registry.snapshot()["histograms"]["session.frame_seconds"])
"""

from repro.obs.emit import (
    BENCH_SCHEMA,
    MetricDelta,
    bench_row,
    diff_rows,
    format_diff,
    load_bench_rows,
    write_bench_json,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    exponential_buckets,
    get_registry,
    set_registry,
    use_registry,
)
from repro.obs.stats import nearest_rank

__all__ = [
    "BENCH_SCHEMA",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricDelta",
    "MetricsRegistry",
    "bench_row",
    "diff_rows",
    "exponential_buckets",
    "format_diff",
    "get_registry",
    "load_bench_rows",
    "nearest_rank",
    "set_registry",
    "use_registry",
    "write_bench_json",
]
