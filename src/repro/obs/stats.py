"""Small shared statistics helpers (percentiles with pinned semantics).

One percentile definition for the whole repo: the **nearest-rank** method
(the smallest value with at least ``fraction`` of the sample at or below
it).  Unlike the ad-hoc ``ordered[int(n * 0.95)]`` index it never reads
past the intended rank and is exact on small samples, which matters for
the chaos recovery metrics where a handful of samples decide a CI gate.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["nearest_rank"]


def nearest_rank(
    values: Sequence[float], fraction: float, *, presorted: bool = False
) -> float:
    """The ``fraction`` percentile of ``values`` by the nearest-rank method.

    ``rank = ceil(fraction * n)`` (1-based, clamped to [1, n]); returns the
    rank-th smallest value.  ``fraction`` is in (0, 1]; ``fraction=1.0``
    is the maximum.  Raises ``ValueError`` on an empty sample.
    """
    if not values:
        raise ValueError("percentile of an empty sample")
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    ordered = list(values) if not presorted else values
    if not presorted:
        ordered = sorted(ordered)
    rank = max(1, math.ceil(fraction * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]
