"""A dependency-free metrics registry for the whole reproduction.

The paper is an engineering-budget argument (50 ms frames, ≤150 ms
end-to-end, per-node kbps vs the 120·n kbps client-server figure), so the
codebase needs first-class measurements, not printf.  This module provides
the three classic instrument kinds plus wall-clock phase timers:

- :class:`Counter` — monotonically increasing event/byte counts;
- :class:`Gauge` — last-written values (bandwidth, roster sizes);
- :class:`Histogram` — fixed-bucket distributions with p50/p95/p99/max
  (frame times, verification latencies, delivery delays, update ages).

Design constraints, in order:

1. **Near-zero overhead when disabled.**  A disabled registry hands out
   shared null singletons whose methods are no-ops and whose timers never
   call :func:`time.perf_counter`; instrumented code binds its metric
   handles once at construction, so the steady-state cost of disabled
   instrumentation is one no-op method call per event and zero
   allocations.
2. **No dependencies.**  Pure stdlib, single-threaded by design (the
   whole simulation is a discrete-event loop).
3. **Machine-readable.**  :meth:`MetricsRegistry.snapshot` returns plain
   dicts ready for ``json.dumps`` — the schema CI's bench-diff consumes
   (see ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import json
import time
from bisect import bisect_left

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "NULL_TIMER",
    "exponential_buckets",
    "get_registry",
    "set_registry",
    "use_registry",
]


def exponential_buckets(start: float, factor: float, count: int) -> tuple[float, ...]:
    """Geometric bucket upper bounds: ``start * factor**i`` for i < count."""
    if start <= 0:
        raise ValueError("start must be positive")
    if factor <= 1.0:
        raise ValueError("factor must be > 1")
    if count < 1:
        raise ValueError("count must be >= 1")
    return tuple(start * factor**i for i in range(count))


#: Default buckets for second-valued timers: 2 µs .. ~17 s, ×2 steps.
TIME_BUCKETS = exponential_buckets(2e-6, 2.0, 24)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A last-written value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta


class _Timer:
    """Context manager recording elapsed wall seconds into a histogram."""

    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._start = 0.0

    def __enter__(self) -> _Timer:
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._histogram.record(time.perf_counter() - self._start)


class Histogram:
    """Fixed-bucket histogram with exact count/sum/min/max.

    ``bounds`` are inclusive upper edges; values above the last bound land
    in an overflow bucket whose effective upper edge is the observed max.
    Percentiles interpolate linearly inside the containing bucket, so with
    buckets much finer than the distribution the error is a fraction of
    one bucket width.
    """

    __slots__ = ("name", "bounds", "buckets", "count", "total", "min", "max", "_timer")

    def __init__(self, name: str, bounds: tuple[float, ...] | None = None) -> None:
        self.name = name
        self.bounds = tuple(sorted(bounds)) if bounds else TIME_BUCKETS
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.buckets = [0] * (len(self.bounds) + 1)  # +1 = overflow
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._timer = _Timer(self)

    def record(self, value: float) -> None:
        self.buckets[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def time(self) -> _Timer:
        """Context manager feeding this histogram in seconds.

        The timer instance is shared to keep the hot path allocation-free;
        nesting the *same* histogram's timer is not supported (use
        ``_Timer(histogram)`` directly for that).
        """
        return self._timer

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimated q-quantile (q in [0, 1]) via in-bucket interpolation."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0.0
        for index, bucket_count in enumerate(self.buckets):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= target:
                lower = self.min if index == 0 else self.bounds[index - 1]
                upper = self.max if index == len(self.bounds) else self.bounds[index]
                lower = max(lower, self.min)
                upper = min(upper, self.max)
                if upper <= lower:
                    return lower
                fraction = (target - cumulative) / bucket_count
                return lower + fraction * (upper - lower)
            cumulative += bucket_count
        return self.max

    def summary(self) -> dict[str, float]:
        """The snapshot row: count/sum/mean/min/max/p50/p95/p99."""
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }


class _NullTimer:
    """Shared no-op timer: no clock reads, no allocation per use."""

    __slots__ = ()

    def __enter__(self) -> _NullTimer:
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


class _NullCounter:
    __slots__ = ()
    name = "<null>"
    value = 0

    def inc(self, amount: int = 1) -> None:
        return None


class _NullGauge:
    __slots__ = ()
    name = "<null>"
    value = 0.0

    def set(self, value: float) -> None:
        return None

    def add(self, delta: float) -> None:
        return None


class _NullHistogram:
    __slots__ = ()
    name = "<null>"
    count = 0
    mean = 0.0

    def record(self, value: float) -> None:
        return None

    def time(self) -> _NullTimer:
        return NULL_TIMER

    def percentile(self, q: float) -> float:
        return 0.0

    def summary(self) -> dict[str, float]:
        return {"count": 0}


NULL_TIMER = _NullTimer()
NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Names → instruments; the one place a snapshot is read from.

    A disabled registry (``enabled=False``) returns the shared null
    singletons from every factory, so instrumented code pays a no-op
    method call per event and allocates nothing.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # ---- instrument factories ---------------------------------------------

    def counter(self, name: str) -> Counter | _NullCounter:
        if not self.enabled:
            return NULL_COUNTER
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge | _NullGauge:
        if not self.enabled:
            return NULL_GAUGE
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def histogram(
        self, name: str, bounds: tuple[float, ...] | None = None
    ) -> Histogram | _NullHistogram:
        if not self.enabled:
            return NULL_HISTOGRAM
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name, bounds)
        return histogram

    # ---- phase timing ------------------------------------------------------

    def phase_timer(self, name: str) -> _Timer | _NullTimer:
        """``with registry.phase_timer("x"):`` → seconds into histogram x."""
        if not self.enabled:
            return NULL_TIMER
        return self.histogram(name).time()

    #: Alias: a span is a phase timer.
    span = phase_timer

    # ---- lifecycle ---------------------------------------------------------

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # ---- export ------------------------------------------------------------

    def snapshot(self) -> dict[str, object]:
        """Plain-dict view of every instrument, ready for ``json.dumps``."""
        return {
            "enabled": self.enabled,
            "counters": {
                name: counter.value
                for name, counter in sorted(self._counters.items())
            },
            "gauges": {
                name: gauge.value for name, gauge in sorted(self._gauges.items())
            },
            "histograms": {
                name: histogram.summary()
                for name, histogram in sorted(self._histograms.items())
            },
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def flat_metrics(self) -> dict[str, float]:
        """Flatten the snapshot into one scalar map (bench-diff rows).

        Counters and gauges keep their names; each histogram contributes
        ``<name>.p50/.p95/.p99/.max/.mean/.count``.
        """
        flat: dict[str, float] = {}
        for name, counter in self._counters.items():
            flat[name] = counter.value
        for name, gauge in self._gauges.items():
            flat[name] = gauge.value
        for name, histogram in self._histograms.items():
            summary = histogram.summary()
            for stat in ("p50", "p95", "p99", "max", "mean", "count"):
                if stat in summary:
                    flat[f"{name}.{stat}"] = summary[stat]
        return dict(sorted(flat.items()))


#: The process-wide default registry: disabled, so uninstrumented runs
#: (unit tests, plain library use) pay only no-op calls.
_default_registry = MetricsRegistry(enabled=False)


def get_registry() -> MetricsRegistry:
    """The current process-wide registry (disabled unless swapped in)."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the process-wide default; returns the old one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous


class use_registry:
    """Context manager: temporarily install a registry process-wide."""

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._previous: MetricsRegistry | None = None

    def __enter__(self) -> MetricsRegistry:
        self._previous = set_registry(self.registry)
        return self.registry

    def __exit__(self, *exc_info: object) -> None:
        assert self._previous is not None
        set_registry(self._previous)
