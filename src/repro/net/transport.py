"""An unreliable datagram network over the discrete-event engine.

Games "rely on UDP for faster communication"; the paper's responsiveness
experiment applies per-pair latencies from King/PeerWise plus 1 % message
loss.  :class:`DatagramNetwork` models exactly that: each send is delayed
by the latency matrix plus jitter, dropped i.i.d. with the loss rate,
metered for bandwidth, optionally clipped by an upload budget, and blocked
when NAT traversal between the pair failed.
"""

from __future__ import annotations

from random import Random
from dataclasses import dataclass
from typing import Callable

from repro.net.bandwidth import BandwidthMeter, UploadBudget
from repro.net.events import EventQueue
from repro.net.latency import LatencyMatrix
from repro.net.nat import Reachability
from repro.obs.registry import MetricsRegistry, get_registry

__all__ = ["Datagram", "NetworkConfig", "DatagramNetwork"]


@dataclass(frozen=True, slots=True)
class Datagram:
    """One delivered message."""

    src: int
    dst: int
    payload: object
    size_bytes: int
    sent_at: float
    delivered_at: float


@dataclass(frozen=True, slots=True)
class NetworkConfig:
    """Loss/jitter knobs (paper defaults: 1 % loss)."""

    loss_rate: float = 0.01
    jitter_ms: float = 3.0  # half-width of uniform jitter added per packet
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        if self.jitter_ms < 0:
            raise ValueError("jitter_ms must be non-negative")


class DatagramNetwork:
    """Connects node handlers through latency, jitter, loss and budgets."""

    def __init__(
        self,
        queue: EventQueue,
        latency: LatencyMatrix,
        config: NetworkConfig | None = None,
        budget: UploadBudget | None = None,
        reachability: Reachability | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.queue = queue
        self.latency = latency
        self.config = config or NetworkConfig()
        self.budget = budget
        self.reachability = reachability
        self.meter = BandwidthMeter()
        self.rng = Random(self.config.seed)
        self._handlers: dict[int, Callable[[Datagram], None]] = {}
        self.sent = 0
        self.delivered = 0
        self.lost = 0
        self.blocked_by_nat = 0
        self.dropped_over_budget = 0
        # Observability: per-message-type send counters/bytes plus a
        # delivery-latency histogram.  Handles are bound once here, so a
        # disabled registry costs one no-op call per event.
        obs = registry if registry is not None else get_registry()
        self._obs = obs
        self._sent_by_type: dict[type, tuple] = {}
        self._ctr_sent = obs.counter("net.datagrams.sent")
        self._ctr_lost = obs.counter("net.datagrams.lost")
        self._ctr_delivered = obs.counter("net.datagrams.delivered")
        self._ctr_bytes = obs.counter("net.bytes.sent")
        self._hist_delivery = obs.histogram("net.delivery_seconds")

    def register(self, node_id: int, handler: Callable[[Datagram], None]) -> None:
        """Attach the receive handler for ``node_id``."""
        if not 0 <= node_id < self.latency.size:
            raise ValueError(f"node {node_id} outside latency matrix")
        self._handlers[node_id] = handler

    def unregister(self, node_id: int) -> None:
        self._handlers.pop(node_id, None)

    def send(self, src: int, dst: int, payload: object, size_bytes: int) -> bool:
        """Send one datagram; returns False when it was locally refused.

        Loss in flight still returns True — the sender cannot observe it,
        exactly like UDP.
        """
        if size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        now = self.queue.now
        if self.reachability is not None and not self.reachability.can_reach(src, dst):
            self.blocked_by_nat += 1
            return False
        if self.budget is not None and not self.budget.try_send(src, size_bytes, now):
            self.dropped_over_budget += 1
            self.meter.usage(src).dropped_over_budget += 1
            return False

        self.meter.record_send(src, size_bytes, now)
        self.sent += 1
        self._ctr_sent.inc()
        self._ctr_bytes.inc(size_bytes)
        per_type = self._sent_by_type.get(type(payload))
        if per_type is None:
            kind = type(payload).__name__
            per_type = (
                self._obs.counter(f"net.sent.{kind}.count"),
                self._obs.counter(f"net.sent.{kind}.bytes"),
            )
            self._sent_by_type[type(payload)] = per_type
        per_type[0].inc()
        per_type[1].inc(size_bytes)
        if src != dst and self.rng.random() < self.config.loss_rate:
            self.lost += 1
            self._ctr_lost.inc()
            return True

        delay = self.latency.one_way(src, dst)
        delay += self.rng.uniform(0.0, self.config.jitter_ms / 1000.0)
        datagram = Datagram(
            src=src,
            dst=dst,
            payload=payload,
            size_bytes=size_bytes,
            sent_at=now,
            delivered_at=now + delay,
        )
        self.queue.schedule(delay, lambda: self._deliver(datagram))
        return True

    def _deliver(self, datagram: Datagram) -> None:
        handler = self._handlers.get(datagram.dst)
        if handler is None:
            return  # node left the game; datagram evaporates
        self.delivered += 1
        self._ctr_delivered.inc()
        self._hist_delivery.record(datagram.delivered_at - datagram.sent_at)
        self.meter.record_receive(
            datagram.dst, datagram.size_bytes, datagram.delivered_at
        )
        handler(datagram)

    @property
    def loss_observed(self) -> float:
        """Fraction of sent datagrams dropped in flight."""
        return self.lost / self.sent if self.sent else 0.0
