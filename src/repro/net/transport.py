"""An unreliable datagram network over the discrete-event engine.

Games "rely on UDP for faster communication"; the paper's responsiveness
experiment applies per-pair latencies from King/PeerWise plus 1 % message
loss.  :class:`DatagramNetwork` models exactly that: each send is delayed
by the latency matrix plus jitter, dropped i.i.d. with the loss rate,
metered for bandwidth, optionally clipped by an upload budget, and blocked
when NAT traversal between the pair failed.
"""

from __future__ import annotations

from random import Random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.net.bandwidth import BandwidthMeter, UploadBudget
from repro.net.events import EventQueue
from repro.net.latency import LatencyMatrix
from repro.net.nat import Reachability
from repro.obs.registry import MetricsRegistry, get_registry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injector import FaultInjector

__all__ = ["Datagram", "NetworkConfig", "DatagramNetwork", "ScheduleController"]


class ScheduleController:
    """Makes delivery order a decision point (see :mod:`repro.mc`).

    A controller attached via :meth:`DatagramNetwork.attach_controller` is
    offered every datagram that survived NAT/budget/fault screening.  When
    :meth:`intercept` returns True the network relinquishes the datagram:
    no loss draw, no jitter draw, no event is scheduled — the controller
    owns delivery and later hands the message back through
    :meth:`DatagramNetwork.deliver_captured` (or drops/duplicates it).
    Returning False leaves the normal stochastic path untouched, so a
    controller that intercepts nothing is bit-identical to no controller.
    """

    def intercept(self, src: int, dst: int, payload: object, size_bytes: int) -> bool:
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class Datagram:
    """One delivered message."""

    src: int
    dst: int
    payload: object
    size_bytes: int
    sent_at: float
    delivered_at: float


@dataclass(frozen=True, slots=True)
class NetworkConfig:
    """Loss/jitter knobs (paper defaults: 1 % loss).

    ``loss_model`` selects between the paper's i.i.d. loss and a two-state
    Gilbert–Elliott chain for bursty loss: each link carries a good/bad
    state; per packet the state evolves (``ge_p_good_to_bad`` /
    ``ge_p_bad_to_good``) and the packet is lost at that state's rate.
    The defaults give a ~5 % stationary loss concentrated in bursts
    (stationary P[bad] = 0.05/(0.05+0.25) ≈ 0.167 at 30 % bad-state loss).
    """

    loss_rate: float = 0.01
    jitter_ms: float = 3.0  # half-width of uniform jitter added per packet
    seed: int = 0
    loss_model: str = "iid"  # "iid" | "gilbert-elliott"
    ge_p_good_to_bad: float = 0.05
    ge_p_bad_to_good: float = 0.25
    ge_loss_good: float = 0.0
    ge_loss_bad: float = 0.3

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        if self.jitter_ms < 0:
            raise ValueError("jitter_ms must be non-negative")
        if self.loss_model not in ("iid", "gilbert-elliott"):
            raise ValueError(f"unknown loss_model {self.loss_model!r}")
        for name in ("ge_p_good_to_bad", "ge_p_bad_to_good", "ge_loss_good", "ge_loss_bad"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")


class DatagramNetwork:
    """Connects node handlers through latency, jitter, loss and budgets."""

    def __init__(
        self,
        queue: EventQueue,
        latency: LatencyMatrix,
        config: NetworkConfig | None = None,
        budget: UploadBudget | None = None,
        reachability: Reachability | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.queue = queue
        self.latency = latency
        self.config = config or NetworkConfig()
        self.budget = budget
        self.reachability = reachability
        self.meter = BandwidthMeter()
        self.rng = Random(self.config.seed)
        self._handlers: dict[int, Callable[[Datagram], None]] = {}
        self.sent = 0
        self.delivered = 0
        self.lost = 0
        self.blocked_by_nat = 0
        self.dropped_over_budget = 0
        self.duplicated = 0
        #: Datagrams delivered but refused by the receiving protocol layer
        #: (tamper rejection, quarantine) — see :meth:`count_protocol_drop`.
        self.rejected_by_protocol = 0
        #: Unified drop accounting: every way a datagram dies, by cause
        #: (loss | budget | nat | partition | crashed | tamper | quarantine).
        self.dropped_by_cause: dict[str, int] = {}
        #: Optional fault injector (see :mod:`repro.faults`); attaching one
        #: with an empty schedule leaves all behaviour bit-identical.
        self.faults: FaultInjector | None = None
        #: Pure-observation send taps (see :mod:`repro.replay`): called
        #: after every offered datagram with its acceptance outcome.  Taps
        #: must never mutate the payload or send — the tape recorder
        #: relies on a tapped run being bit-identical to an untapped one.
        self.send_taps: list[Callable[[int, int, object, int, bool], None]] = []
        #: Optional delivery-schedule controller (see :mod:`repro.mc`).
        self.controller: ScheduleController | None = None
        self._ge_state: dict[tuple[int, int], bool] = {}  # link -> in bad state
        # Observability: per-message-type send counters/bytes plus a
        # delivery-latency histogram.  Handles are bound once here, so a
        # disabled registry costs one no-op call per event.
        obs = registry if registry is not None else get_registry()
        self._obs = obs
        self._sent_by_type: dict[type, tuple] = {}
        self._ctr_sent = obs.counter("net.datagrams.sent")
        self._ctr_lost = obs.counter("net.datagrams.lost")
        self._ctr_delivered = obs.counter("net.datagrams.delivered")
        self._ctr_bytes = obs.counter("net.bytes.sent")
        self._ctr_duplicated = obs.counter("net.datagrams.duplicated")
        self._hist_delivery = obs.histogram("net.delivery_seconds")
        self._ctr_dropped = {
            cause: obs.counter(f"net.dropped.{cause}")
            for cause in ("loss", "budget", "nat", "partition", "crashed")
        }

    def attach_faults(self, injector: FaultInjector) -> None:
        """Hook a :class:`repro.faults.FaultInjector` into this network."""
        self.faults = injector

    def attach_controller(self, controller: ScheduleController) -> None:
        """Hook a :class:`ScheduleController` into this network."""
        self.controller = controller

    def deliver_captured(
        self, src: int, dst: int, payload: object, size_bytes: int, sent_at: float
    ) -> None:
        """Deliver a controller-captured datagram at the current sim time.

        Only meaningful from an attached :class:`ScheduleController`; the
        datagram re-enters the normal delivery path (counters, bandwidth
        accounting, crashed-destination screening).
        """
        datagram = Datagram(
            src=src,
            dst=dst,
            payload=payload,
            size_bytes=size_bytes,
            sent_at=sent_at,
            delivered_at=self.queue.now,
        )
        self._deliver(datagram)

    def drop_captured(self) -> None:
        """Account a controller-decided drop (cause ``schedule``)."""
        self.lost += 1
        self._ctr_lost.inc()
        self._count_drop("schedule")

    def count_protocol_drop(self, cause: str) -> None:
        """Account a datagram the *receiving node* refused after delivery.

        The Byzantine hardening drops traffic above the transport (a
        tampered signature, a quarantined link); folding those into the
        same ``net.dropped.{cause}`` registry keeps ``messages_lost``
        consistent with the PR 4 convention that every dead datagram has
        exactly one cause counter.
        """
        self.rejected_by_protocol += 1
        self._count_drop(cause)

    def _count_drop(self, cause: str) -> None:
        self.dropped_by_cause[cause] = self.dropped_by_cause.get(cause, 0) + 1
        counter = self._ctr_dropped.get(cause)
        if counter is None:
            counter = self._obs.counter(f"net.dropped.{cause}")
            self._ctr_dropped[cause] = counter
        counter.inc()

    def register(self, node_id: int, handler: Callable[[Datagram], None]) -> None:
        """Attach the receive handler for ``node_id``."""
        if not 0 <= node_id < self.latency.size:
            raise ValueError(f"node {node_id} outside latency matrix")
        self._handlers[node_id] = handler

    def unregister(self, node_id: int) -> None:
        self._handlers.pop(node_id, None)

    def send(self, src: int, dst: int, payload: object, size_bytes: int) -> bool:
        """Send one datagram; returns False when it was locally refused.

        Loss in flight still returns True — the sender cannot observe it,
        exactly like UDP.
        """
        accepted = self._send(src, dst, payload, size_bytes)
        for tap in self.send_taps:
            tap(src, dst, payload, size_bytes, accepted)
        return accepted

    def _send(self, src: int, dst: int, payload: object, size_bytes: int) -> bool:
        """The actual send path (:meth:`send` minus the observation taps)."""
        if size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        now = self.queue.now
        if self.reachability is not None and not self.reachability.can_reach(src, dst):
            self.blocked_by_nat += 1
            self._count_drop("nat")
            return False
        if self.budget is not None and not self.budget.try_send(src, size_bytes, now):
            self.dropped_over_budget += 1
            self.meter.usage(src).dropped_over_budget += 1
            self._count_drop("budget")
            return False

        self.meter.record_send(src, size_bytes, now)
        self.sent += 1
        self._ctr_sent.inc()
        self._ctr_bytes.inc(size_bytes)
        per_type = self._sent_by_type.get(type(payload))
        if per_type is None:
            kind = type(payload).__name__
            per_type = (
                self._obs.counter(f"net.sent.{kind}.count"),
                self._obs.counter(f"net.sent.{kind}.bytes"),
            )
            self._sent_by_type[type(payload)] = per_type
        per_type[0].inc()
        per_type[1].inc(size_bytes)
        if self.controller is not None and self.controller.intercept(
            src, dst, payload, size_bytes
        ):
            # Captured: the controller owns delivery from here — including
            # loss, which it models as explicit budgeted drop decisions, so
            # ambient faults and in-flight loss must not race it (checked
            # first).  The send still counts as accepted — like loss,
            # capture is invisible to the sender.
            return True
        if self.faults is not None:
            # Like in-flight loss, a partition is invisible to the sender.
            cause = self.faults.drop_cause(src, dst)
            if cause is not None:
                self.lost += 1
                self._ctr_lost.inc()
                self._count_drop(cause)
                return True
        if src != dst and self._lost_in_flight(src, dst):
            self.lost += 1
            self._ctr_lost.inc()
            self._count_drop("loss")
            return True

        delay = self.latency.one_way(src, dst)
        delay += self.rng.uniform(0.0, self.config.jitter_ms / 1000.0)
        if self.faults is not None:
            delay += self.faults.extra_delay_seconds(src, dst)
        datagram = Datagram(
            src=src,
            dst=dst,
            payload=payload,
            size_bytes=size_bytes,
            sent_at=now,
            delivered_at=now + delay,
        )
        self.queue.schedule(delay, lambda: self._deliver(datagram))
        if self.faults is not None and src != dst:
            offset = self.faults.duplicate_offset_seconds()
            if offset is not None:
                copy = Datagram(
                    src=src,
                    dst=dst,
                    payload=payload,
                    size_bytes=size_bytes,
                    sent_at=now,
                    delivered_at=now + delay + offset,
                )
                self.duplicated += 1
                self._ctr_duplicated.inc()
                self.queue.schedule(delay + offset, lambda: self._deliver(copy))
        return True

    def _lost_in_flight(self, src: int, dst: int) -> bool:
        """One loss decision, under the configured loss model."""
        cfg = self.config
        if cfg.loss_model == "iid":
            return self.rng.random() < cfg.loss_rate
        # Gilbert–Elliott: evolve the link's state, then sample loss at
        # the new state's rate — losses cluster while the link is bad.
        key = (src, dst)
        bad = self._ge_state.get(key, False)
        flip = cfg.ge_p_bad_to_good if bad else cfg.ge_p_good_to_bad
        if self.rng.random() < flip:
            bad = not bad
        self._ge_state[key] = bad
        rate = cfg.ge_loss_bad if bad else cfg.ge_loss_good
        return rate > 0.0 and self.rng.random() < rate

    def _deliver(self, datagram: Datagram) -> None:
        handler = self._handlers.get(datagram.dst)
        if handler is None:
            # Node left (or crashed out of) the game; the in-flight
            # datagram evaporates at its door.
            self._count_drop("crashed")
            return
        self.delivered += 1
        self._ctr_delivered.inc()
        self._hist_delivery.record(datagram.delivered_at - datagram.sent_at)
        self.meter.record_receive(
            datagram.dst, datagram.size_bytes, datagram.delivered_at
        )
        handler(datagram)

    @property
    def loss_observed(self) -> float:
        """Fraction of sent datagrams dropped in flight."""
        return self.lost / self.sent if self.sent else 0.0
