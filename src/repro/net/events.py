"""A deterministic discrete-event engine.

Everything network-related in the reproduction (message delivery, loss,
jitter, frame ticks) runs on this engine.  It is a classic monotone
event-heap simulator with two guarantees the experiments rely on:

- **Determinism** — ties on time are broken by insertion sequence, so the
  same seed yields the same schedule on every run;
- **Monotonicity** — scheduling into the past raises, so causality bugs in
  protocol code fail loudly instead of silently reordering.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["Event", "EventQueue", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised on causality violations or a corrupted schedule."""


@dataclass(frozen=True, slots=True)
class Event:
    """A scheduled callback."""

    time: float
    sequence: int
    action: Callable[[], None] = field(compare=False)

    def sort_key(self) -> tuple[float, int]:
        return (self.time, self.sequence)


class EventQueue:
    """Monotone event heap with cancellation support."""

    def __init__(self) -> None:
        self._heap: list[tuple[tuple[float, int], Event]] = []
        self._sequence = itertools.count()
        self._cancelled: set[int] = set()
        self.now = 0.0
        self.processed = 0

    def schedule(self, delay: float, action: Callable[[], None]) -> int:
        """Schedule ``action`` after ``delay`` seconds; returns an event id."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        sequence = next(self._sequence)
        event = Event(self.now + delay, sequence, action)
        heapq.heappush(self._heap, (event.sort_key(), event))
        return sequence

    def schedule_at(self, time: float, action: Callable[[], None]) -> int:
        return self.schedule(time - self.now, action)

    def cancel(self, event_id: int) -> None:
        """Cancel a pending event (no-op if it already fired)."""
        self._cancelled.add(event_id)

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def empty(self) -> bool:
        return not self._heap

    def step(self) -> bool:
        """Run the next event; returns False when the queue is empty."""
        while self._heap:
            _, event = heapq.heappop(self._heap)
            if event.sequence in self._cancelled:
                self._cancelled.discard(event.sequence)
                continue
            if event.time < self.now - 1e-12:
                raise SimulationError("event heap went backwards in time")
            self.now = max(self.now, event.time)
            event.action()
            self.processed += 1
            return True
        return False

    def run_until(self, end_time: float, max_events: int | None = None) -> int:
        """Drain events with time ≤ end_time; returns the number processed."""
        count = 0
        while self._heap:
            key, event = self._heap[0]
            if key[0] > end_time:
                break
            if max_events is not None and count >= max_events:
                raise SimulationError(
                    f"exceeded {max_events} events before t={end_time}"
                )
            if self.step():
                count += 1
        self.now = max(self.now, end_time)
        return count

    def run(self, max_events: int = 10_000_000) -> int:
        """Drain the whole queue (bounded by ``max_events``)."""
        count = 0
        while self.step():
            count += 1
            if count > max_events:
                raise SimulationError("simulation did not terminate")
        return count
