"""Wide-area network substrate: event engine, latency models, transport.

Public surface:

- :class:`~repro.net.events.EventQueue` — deterministic discrete events;
- :func:`~repro.net.latency.king_like` / :func:`~repro.net.latency.peerwise_like`
  — synthetic stand-ins for the King and PeerWise latency datasets;
- :class:`~repro.net.transport.DatagramNetwork` — UDP-like unreliable
  delivery with loss, jitter, bandwidth metering, budgets and NAT;
- :class:`~repro.net.bandwidth.BandwidthMeter` — kbps accounting;
- :class:`~repro.net.nat.Reachability` — UPnP/STUN traversal model.
"""

from repro.net.bandwidth import BandwidthMeter, NodeUsage, UploadBudget
from repro.net.events import EventQueue, SimulationError
from repro.net.latency import LatencyMatrix, king_like, peerwise_like, uniform_lan
from repro.net.nat import NatProfile, NatType, Reachability, sample_profiles
from repro.net.transport import Datagram, DatagramNetwork, NetworkConfig

__all__ = [
    "BandwidthMeter",
    "Datagram",
    "DatagramNetwork",
    "EventQueue",
    "LatencyMatrix",
    "NatProfile",
    "NatType",
    "NetworkConfig",
    "NodeUsage",
    "Reachability",
    "SimulationError",
    "UploadBudget",
    "king_like",
    "peerwise_like",
    "sample_profiles",
    "uniform_lan",
]
