"""Per-node bandwidth accounting.

"Most broadband connections are asymmetric, with upload bandwidth being
the limitation" — the scalability experiment (Section II gives centralized
Quake III ≈ 120·n kbps; naive P2P grows quadratically) is entirely about
counting bytes sent per node per second.  :class:`BandwidthMeter` records
every send/receive and reports kbps aggregates; :class:`UploadBudget`
optionally enforces a cap (messages over budget are dropped, which is how
a saturated uplink behaves for UDP).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["BandwidthMeter", "UploadBudget", "NodeUsage"]


@dataclass
class NodeUsage:
    """Byte counters for one node."""

    sent_bytes: int = 0
    received_bytes: int = 0
    sent_messages: int = 0
    received_messages: int = 0
    dropped_over_budget: int = 0


class BandwidthMeter:
    """Accumulates traffic per node and converts to kbps over a window."""

    def __init__(self) -> None:
        self._usage: dict[int, NodeUsage] = {}
        self._start_time = 0.0
        self._end_time = 0.0

    def usage(self, node_id: int) -> NodeUsage:
        return self._usage.setdefault(node_id, NodeUsage())

    def record_send(self, node_id: int, size_bytes: int, time: float) -> None:
        entry = self.usage(node_id)
        entry.sent_bytes += size_bytes
        entry.sent_messages += 1
        self._end_time = max(self._end_time, time)

    def record_receive(self, node_id: int, size_bytes: int, time: float) -> None:
        entry = self.usage(node_id)
        entry.received_bytes += size_bytes
        entry.received_messages += 1
        self._end_time = max(self._end_time, time)

    @property
    def duration(self) -> float:
        return max(1e-9, self._end_time - self._start_time)

    def upload_kbps(self, node_id: int) -> float:
        return self.usage(node_id).sent_bytes * 8.0 / 1000.0 / self.duration

    def download_kbps(self, node_id: int) -> float:
        return self.usage(node_id).received_bytes * 8.0 / 1000.0 / self.duration

    def mean_upload_kbps(self) -> float:
        if not self._usage:
            return 0.0
        return sum(self.upload_kbps(n) for n in self._usage) / len(self._usage)

    def max_upload_kbps(self) -> float:
        if not self._usage:
            return 0.0
        return max(self.upload_kbps(n) for n in self._usage)

    def total_kbps(self) -> float:
        return sum(self.upload_kbps(n) for n in self._usage)

    def node_ids(self) -> list[int]:
        return sorted(self._usage)


@dataclass
class UploadBudget:
    """A per-node upload cap over sliding one-second windows."""

    bytes_per_second: float
    _windows: dict[int, list[tuple[float, int]]] = field(default_factory=dict)

    def try_send(self, node_id: int, size_bytes: int, time: float) -> bool:
        """Charge ``size_bytes`` at ``time``; False when the cap is exceeded."""
        if self.bytes_per_second <= 0:
            return True
        window = self._windows.setdefault(node_id, [])
        cutoff = time - 1.0
        while window and window[0][0] < cutoff:
            window.pop(0)
        used = sum(size for _, size in window)
        if used + size_bytes > self.bytes_per_second:
            return False
        window.append((time, size_bytes))
        return True
