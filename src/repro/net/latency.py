"""Wide-area latency models standing in for the King and PeerWise datasets.

The paper simulates latency "using latencies available from the King [25]
and PeerWise [26] datasets, filtered using a Geo-IP location dataset that
limits the locations of IP addresses to the United States (with mean
latencies of 62 and 68 ms respectively)".  We do not have those datasets,
so this module synthesises per-pair one-way delay matrices with the same
calibrated statistics:

- :func:`king_like` — *geographic* model: hosts are scattered over a
  US-scale plane; pairwise delay = propagation (distance at ~2/3 c, with a
  routing-inflation factor) + per-host access delay.  Produces the
  triangle-inequality-respecting core plus heavy access-delay tails that
  King exhibits.
- :func:`peerwise_like` — *lognormal* model: pairwise delays drawn from a
  lognormal fitted to the target mean/σ, which matches PeerWise's reported
  spread (PeerWise pairs peers to exploit triangle-inequality violations,
  so its matrix is noisier).

Both return a :class:`LatencyMatrix` of **one-way** delays in seconds whose
mean matches the dataset's documented mean RTT/2 for US-filtered hosts.
"""

from __future__ import annotations

import math
from random import Random
from dataclasses import dataclass

__all__ = ["LatencyMatrix", "king_like", "peerwise_like", "uniform_lan"]

SPEED_OF_LIGHT_FIBER_KM_S = 200_000.0  # ~2/3 c
ROUTE_INFLATION = 1.8  # paths are not great circles


@dataclass(frozen=True)
class LatencyMatrix:
    """Symmetric matrix of one-way delays between ``size`` hosts (seconds)."""

    name: str
    delays: tuple[tuple[float, ...], ...]

    @property
    def size(self) -> int:
        return len(self.delays)

    def one_way(self, src: int, dst: int) -> float:
        if src == dst:
            return 0.0
        return self.delays[src][dst]

    def rtt(self, src: int, dst: int) -> float:
        return 2.0 * self.one_way(src, dst)

    def mean_one_way(self) -> float:
        total, count = 0.0, 0
        for i in range(self.size):
            for j in range(self.size):
                if i != j:
                    total += self.delays[i][j]
                    count += 1
        return total / count if count else 0.0

    def percentile_one_way(self, q: float) -> float:
        """The q-th percentile (0..100) of off-diagonal one-way delays."""
        values = sorted(
            self.delays[i][j]
            for i in range(self.size)
            for j in range(self.size)
            if i != j
        )
        if not values:
            return 0.0
        index = min(len(values) - 1, max(0, int(round(q / 100.0 * (len(values) - 1)))))
        return values[index]


def _symmetric(matrix: list[list[float]], name: str) -> LatencyMatrix:
    size = len(matrix)
    for i in range(size):
        matrix[i][i] = 0.0
        for j in range(i + 1, size):
            value = max(0.0005, (matrix[i][j] + matrix[j][i]) / 2.0)
            matrix[i][j] = matrix[j][i] = value
    return LatencyMatrix(name=name, delays=tuple(tuple(row) for row in matrix))


def _rescale_to_mean(matrix: list[list[float]], target_mean: float) -> None:
    size = len(matrix)
    total, count = 0.0, 0
    for i in range(size):
        for j in range(size):
            if i != j:
                total += matrix[i][j]
                count += 1
    current = total / count if count else 0.0
    if current <= 0:
        return
    scale = target_mean / current
    for i in range(size):
        for j in range(size):
            matrix[i][j] *= scale


def king_like(
    size: int, seed: int = 0, mean_one_way_ms: float = 31.0
) -> LatencyMatrix:
    """Geographic US-scale latency matrix (King mean RTT ≈ 62 ms ⇒ 31 ms/way)."""
    if size < 1:
        raise ValueError("size must be positive")
    rng = Random(seed)
    # Hosts clustered around a handful of metro areas on a 4000x2500 km plane.
    metros = [(rng.uniform(0, 4000.0), rng.uniform(0, 2500.0)) for _ in range(8)]
    hosts = []
    access = []
    for _ in range(size):
        mx, my = rng.choice(metros)
        hosts.append((mx + rng.gauss(0, 120.0), my + rng.gauss(0, 120.0)))
        # Access-network delay: a few ms, with a heavy DSL-ish tail.
        access.append(0.002 + rng.expovariate(1.0 / 0.006))
    matrix = [[0.0] * size for _ in range(size)]
    for i in range(size):
        for j in range(size):
            if i == j:
                continue
            dx = hosts[i][0] - hosts[j][0]
            dy = hosts[i][1] - hosts[j][1]
            km = math.hypot(dx, dy) * ROUTE_INFLATION
            propagation = km / SPEED_OF_LIGHT_FIBER_KM_S
            matrix[i][j] = propagation + access[i] + access[j]
    _rescale_to_mean(matrix, mean_one_way_ms / 1000.0)
    return _symmetric(matrix, f"king-like(n={size},seed={seed})")


def peerwise_like(
    size: int, seed: int = 0, mean_one_way_ms: float = 34.0, sigma: float = 0.55
) -> LatencyMatrix:
    """Lognormal latency matrix (PeerWise mean RTT ≈ 68 ms ⇒ 34 ms/way)."""
    if size < 1:
        raise ValueError("size must be positive")
    rng = Random(seed)
    mean = mean_one_way_ms / 1000.0
    # Lognormal with E[X] = mean: mu = ln(mean) - sigma^2/2.
    mu = math.log(mean) - sigma * sigma / 2.0
    matrix = [[0.0] * size for _ in range(size)]
    for i in range(size):
        for j in range(i + 1, size):
            matrix[i][j] = matrix[j][i] = rng.lognormvariate(mu, sigma)
    _rescale_to_mean(matrix, mean)
    return _symmetric(matrix, f"peerwise-like(n={size},seed={seed})")


def uniform_lan(size: int, one_way_ms: float = 0.5) -> LatencyMatrix:
    """A flat LAN matrix (the paper's LAN experiments)."""
    if size < 1:
        raise ValueError("size must be positive")
    delay = one_way_ms / 1000.0
    matrix = [
        [0.0 if i == j else delay for j in range(size)] for i in range(size)
    ]
    return _symmetric(matrix, f"lan(n={size})")
