"""NAT reachability model: UPnP port mapping with STUN hole-punch fallback.

Section VI: "For NAT support, Internet Gateway Device Protocol (using the
MiniUPnP library) is used to add translation rules at the router.  If the
protocol is not supported by the router (or disabled), NAT traversal
through hole punching is employed using the STUN(T) library."

We model each node's NAT as one of four types.  A pair can exchange
datagrams when either side is openly reachable (public / UPnP-mapped) or
hole punching succeeds for the pair (deterministically seeded; symmetric
NAT on both sides defeats punching, matching STUNT's behaviour).
"""

from __future__ import annotations

from random import Random
from dataclasses import dataclass

__all__ = ["NatType", "NatProfile", "Reachability", "sample_profiles"]


class NatType:
    """NAT classes ordered from easiest to hardest to traverse."""

    PUBLIC = "public"
    UPNP = "upnp"  # router honours IGD port-mapping requests
    CONE = "cone"  # full/restricted cone: hole punching works
    SYMMETRIC = "symmetric"  # punching fails against another symmetric NAT

    ALL = (PUBLIC, UPNP, CONE, SYMMETRIC)


@dataclass(frozen=True, slots=True)
class NatProfile:
    """One node's NAT situation."""

    node_id: int
    nat_type: str

    def __post_init__(self) -> None:
        if self.nat_type not in NatType.ALL:
            raise ValueError(f"unknown NAT type {self.nat_type!r}")

    @property
    def openly_reachable(self) -> bool:
        return self.nat_type in (NatType.PUBLIC, NatType.UPNP)


def sample_profiles(
    size: int,
    seed: int = 0,
    weights: dict[str, float] | None = None,
) -> list[NatProfile]:
    """Draw NAT types for ``size`` nodes (defaults mirror home-broadband mixes)."""
    weights = weights or {
        NatType.PUBLIC: 0.10,
        NatType.UPNP: 0.55,
        NatType.CONE: 0.25,
        NatType.SYMMETRIC: 0.10,
    }
    rng = Random(seed)
    kinds = list(weights)
    probabilities = [weights[k] for k in kinds]
    return [
        NatProfile(node_id=i, nat_type=rng.choices(kinds, probabilities, k=1)[0])
        for i in range(size)
    ]


class Reachability:
    """Pairwise reachability derived from NAT profiles.

    Hole punching between two cone NATs succeeds with high probability,
    against one symmetric NAT with reduced probability, and between two
    symmetric NATs never.  Outcomes are decided once per unordered pair
    (the punched hole persists), seeded for reproducibility.
    """

    def __init__(
        self,
        profiles: list[NatProfile],
        seed: int = 0,
        punch_success: float = 0.95,
        punch_success_symmetric: float = 0.60,
    ) -> None:
        self.profiles = {p.node_id: p for p in profiles}
        self.rng = Random(seed)
        self.punch_success = punch_success
        self.punch_success_symmetric = punch_success_symmetric
        self._pair_cache: dict[tuple[int, int], bool] = {}
        self.punch_attempts = 0
        self.punch_failures = 0

    def can_reach(self, a: int, b: int) -> bool:
        """Can nodes ``a`` and ``b`` exchange datagrams?"""
        if a == b:
            return True
        pa, pb = self.profiles.get(a), self.profiles.get(b)
        if pa is None or pb is None:
            return False
        if pa.openly_reachable or pb.openly_reachable:
            return True
        key = (a, b) if a <= b else (b, a)
        cached = self._pair_cache.get(key)
        if cached is not None:
            return cached
        result = self._try_punch(pa, pb)
        self._pair_cache[key] = result
        return result

    def _try_punch(self, pa: NatProfile, pb: NatProfile) -> bool:
        self.punch_attempts += 1
        both_symmetric = (
            pa.nat_type == NatType.SYMMETRIC and pb.nat_type == NatType.SYMMETRIC
        )
        if both_symmetric:
            self.punch_failures += 1
            return False
        one_symmetric = NatType.SYMMETRIC in (pa.nat_type, pb.nat_type)
        chance = self.punch_success_symmetric if one_symmetric else self.punch_success
        success = self.rng.random() < chance
        if not success:
            self.punch_failures += 1
        return success

    def connectivity_ratio(self) -> float:
        """Fraction of all unordered pairs that can communicate."""
        ids = sorted(self.profiles)
        if len(ids) < 2:
            return 1.0
        reachable, total = 0, 0
        for i, a in enumerate(ids):
            for b in ids[i + 1 :]:
                total += 1
                if self.can_reach(a, b):
                    reachable += 1
        return reachable / total
