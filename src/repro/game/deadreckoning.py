"""Dead reckoning: motion prediction and guidance-message contents.

"Dead reckoning is the process of predicting the state of an avatar based
on past observations" — players in somebody's VS receive one *guidance*
message per second carrying the avatar's current state plus a short-horizon
prediction of its trajectory; the receiver simulates the avatar along that
prediction until the next guidance arrives.

Verifiers later compare the predicted trajectory to what actually happened
("we use the area between the simulated and the actual trajectory of the
avatar as a metric of the deviation") — :func:`trajectory_deviation_area`
is that metric.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.config import FRAME_SECONDS, FRAMES_PER_SECOND
from repro.game.avatar import AvatarSnapshot
from repro.game.vector import Vec3

__all__ = [
    "GuidancePrediction",
    "predict_linear",
    "simulate_guidance",
    "simulate_guidance_reference",
    "trajectory_deviation_area",
    "trajectory_deviation_area_reference",
]


@dataclass(frozen=True, slots=True)
class GuidancePrediction:
    """The predictive payload of a guidance (dead-reckoning) message."""

    frame: int  # frame the prediction was made at
    origin: Vec3  # position at that frame
    velocity: Vec3  # predicted constant velocity
    yaw: float
    horizon_frames: int  # how far ahead the prediction is meant to hold

    def position_at(self, frame: int, frame_seconds: float = FRAME_SECONDS) -> Vec3:
        """Predicted position at ``frame`` (clamped to the horizon)."""
        ahead = min(max(0, frame - self.frame), self.horizon_frames)
        return self.origin + self.velocity * (ahead * frame_seconds)


def predict_linear(
    snapshot: AvatarSnapshot, horizon_frames: int = FRAMES_PER_SECOND
) -> GuidancePrediction:
    """First-order prediction: constant current velocity.

    This matches the baseline predictor of the authors' dead-reckoning work
    [16]; the AI-guidance refinements proposed there are represented by the
    horizon and by the verification-side tolerance calibration.
    """
    if horizon_frames <= 0:
        raise ValueError("horizon_frames must be positive")
    return GuidancePrediction(
        frame=snapshot.frame,
        origin=snapshot.position,
        velocity=snapshot.velocity,
        yaw=snapshot.yaw,
        horizon_frames=horizon_frames,
    )


def simulate_guidance(
    prediction: GuidancePrediction,
    start_frame: int,
    end_frame: int,
    frame_seconds: float = FRAME_SECONDS,
) -> list[Vec3]:
    """The receiver-side simulated trajectory across [start, end] frames.

    Flat-array kernel: the prediction's origin/velocity components are
    hoisted once and each sample is built with one ``Vec3`` instead of the
    per-frame ``position_at`` dispatch (which allocates two).  Arithmetic
    mirrors :meth:`GuidancePrediction.position_at` operation-for-operation;
    bit-identical to :func:`simulate_guidance_reference` (tests enforce it).
    """
    if end_frame < start_frame:
        raise ValueError("end_frame before start_frame")
    prediction_frame = prediction.frame
    horizon = prediction.horizon_frames
    origin = prediction.origin
    ox, oy, oz = origin.x, origin.y, origin.z
    velocity = prediction.velocity
    vx, vy, vz = velocity.x, velocity.y, velocity.z
    track: list[Vec3] = []
    append = track.append
    for frame in range(start_frame, end_frame + 1):
        ahead = frame - prediction_frame
        if ahead < 0:
            ahead = 0
        if ahead > horizon:
            ahead = horizon
        t = ahead * frame_seconds
        append(Vec3(ox + vx * t, oy + vy * t, oz + vz * t))
    return track


def simulate_guidance_reference(
    prediction: GuidancePrediction,
    start_frame: int,
    end_frame: int,
    frame_seconds: float = FRAME_SECONDS,
) -> list[Vec3]:
    """The retained naive implementation — the kernel's exactness gate."""
    if end_frame < start_frame:
        raise ValueError("end_frame before start_frame")
    return [
        prediction.position_at(frame, frame_seconds)
        for frame in range(start_frame, end_frame + 1)
    ]


def trajectory_deviation_area(
    predicted: list[Vec3], actual: list[Vec3], frame_seconds: float = FRAME_SECONDS
) -> float:
    """Area (u·s) between predicted and actual trajectories.

    Both lists must be sampled per frame over the same frame range.  The
    area is the time integral of the point-wise distance (trapezoidal rule),
    i.e. the paper's deviation metric for guidance verification.

    Flat-array kernel: gaps are computed with inlined component arithmetic
    (no intermediate ``Vec3`` per pair) and the trapezoid accumulation
    keeps the reference's exact left-to-right expression, so the result is
    bit-identical to :func:`trajectory_deviation_area_reference`.
    """
    if len(predicted) != len(actual):
        raise ValueError("trajectories must cover the same frames")
    if len(predicted) < 2:
        return 0.0
    sqrt = math.sqrt
    gaps: list[float] = []
    append = gaps.append
    for p, a in zip(predicted, actual):
        dx = p.x - a.x
        dy = p.y - a.y
        dz = p.z - a.z
        append(sqrt(dx * dx + dy * dy + dz * dz))
    area = 0.0
    left = gaps[0]
    for index in range(1, len(gaps)):
        right = gaps[index]
        area += 0.5 * (left + right) * frame_seconds
        left = right
    return area


def trajectory_deviation_area_reference(
    predicted: list[Vec3], actual: list[Vec3], frame_seconds: float = FRAME_SECONDS
) -> float:
    """The retained naive implementation — the kernel's exactness gate."""
    if len(predicted) != len(actual):
        raise ValueError("trajectories must cover the same frames")
    if len(predicted) < 2:
        return 0.0
    gaps = [p.distance_to(a) for p, a in zip(predicted, actual)]
    area = 0.0
    for left, right in zip(gaps, gaps[1:]):
        area += 0.5 * (left + right) * frame_seconds
    return area
