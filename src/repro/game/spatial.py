"""Uniform spatial grid over map solids — the LOS/floor acceleration index.

The naive geometry queries in :mod:`repro.game.gamemap` scan *every* solid
box per call: ``line_of_sight`` is called O(players²) times per 50 ms frame
by interest management, and ``floor_height`` once per bot per physics tick,
so the frame loop was O(players² × solids).  This module provides the
acceleration structure behind the fast path: a uniform grid over the XY
projection of the solids.  Queries gather the *candidate* boxes whose grid
cells a segment (or point) touches and only those candidates are handed to
the exact slab/containment tests — the per-box test code is unchanged, so
results are bit-identical to the naive scan.

Conservativeness contract (what the exactness gate relies on):

- every box is registered in **all** cells its XY bounding rectangle
  overlaps (inclusive index ranges, floor() is monotone so a coordinate
  inside the rectangle can never land outside the registered range);
- :meth:`SpatialGrid.segment_candidates` visits every cell that any point
  of the XY-projected segment lies in, with a small widening margin per
  column to absorb floating-point slope error;
- therefore a box that intersects a 3-D segment — which requires its XY
  rectangle to meet the segment's XY projection — is always a candidate.

The grid is a pure function of the box list: no randomness, no wall clock,
deterministic iteration order (box index order), so the fast path stays
byte-identical across runs.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (gamemap imports us)
    from repro.game.gamemap import Box

__all__ = ["SpatialGrid"]

#: Hard cap on cells per axis: maps are small, the grid must stay cheap to
#: build (it is rebuilt lazily whenever the solids list changes length).
_MAX_CELLS_PER_AXIS = 64

#: Treat a segment with |dx| below this as vertical in XY (mirrors the slab
#: test's own degenerate-axis threshold in :meth:`Box.intersects_segment`).
_VERTICAL_EPS = 1e-12


class SpatialGrid:
    """A uniform XY grid of box indices supporting segment/point queries."""

    __slots__ = (
        "boxes",
        "box_bounds",
        "num_boxes",
        "min_x",
        "min_y",
        "max_x",
        "max_y",
        "nx",
        "ny",
        "cell_x",
        "cell_y",
        "_cells",
        "segment_queries",
        "point_queries",
    )

    def __init__(self, boxes: Sequence["Box"]) -> None:
        self.boxes: tuple["Box", ...] = tuple(boxes)
        self.num_boxes: int = len(self.boxes)
        #: Flat per-box bounds ``(min_x, min_y, min_z, max_x, max_y, max_z)``
        #: so hot query loops read plain floats instead of chasing
        #: ``Vec3`` attribute chains (see GameMap.line_of_sight).
        self.box_bounds: list[tuple[float, float, float, float, float, float]] = [
            (
                b.min_corner.x,
                b.min_corner.y,
                b.min_corner.z,
                b.max_corner.x,
                b.max_corner.y,
                b.max_corner.z,
            )
            for b in self.boxes
        ]
        #: query counters (perf accounting only; never affect results)
        self.segment_queries: int = 0
        self.point_queries: int = 0
        if not self.boxes:
            self.min_x = self.min_y = 0.0
            self.max_x = self.max_y = 0.0
            self.nx = self.ny = 1
            self.cell_x = self.cell_y = 1.0
            self._cells: list[list[int]] = [[]]
            return

        self.min_x = min(b.min_corner.x for b in self.boxes)
        self.min_y = min(b.min_corner.y for b in self.boxes)
        self.max_x = max(b.max_corner.x for b in self.boxes)
        self.max_y = max(b.max_corner.y for b in self.boxes)

        # ~4 cells per box keeps candidate lists short without making the
        # per-query cell walk longer than the box list it replaces.
        per_axis = int(math.ceil(2.0 * math.sqrt(self.num_boxes)))
        self.nx = max(1, min(_MAX_CELLS_PER_AXIS, per_axis))
        self.ny = self.nx
        span_x = max(self.max_x - self.min_x, 1e-6)
        span_y = max(self.max_y - self.min_y, 1e-6)
        self.cell_x = span_x / self.nx
        self.cell_y = span_y / self.ny

        self._cells = [[] for _ in range(self.nx * self.ny)]
        for index, box in enumerate(self.boxes):
            ix0 = self._ix(box.min_corner.x)
            ix1 = self._ix(box.max_corner.x)
            iy0 = self._iy(box.min_corner.y)
            iy1 = self._iy(box.max_corner.y)
            for ix in range(ix0, ix1 + 1):
                row = ix * self.ny
                for iy in range(iy0, iy1 + 1):
                    self._cells[row + iy].append(index)

    # ---- index helpers ----------------------------------------------------

    def _ix(self, x: float) -> int:
        """Clamped x cell index; floor() keeps the mapping monotone."""
        ix = int(math.floor((x - self.min_x) / self.cell_x))
        if ix < 0:
            return 0
        if ix >= self.nx:
            return self.nx - 1
        return ix

    def _iy(self, y: float) -> int:
        iy = int(math.floor((y - self.min_y) / self.cell_y))
        if iy < 0:
            return 0
        if iy >= self.ny:
            return self.ny - 1
        return iy

    # ---- queries ----------------------------------------------------------

    def point_candidates(self, x: float, y: float) -> Sequence[int]:
        """Indices of boxes whose XY rectangle may contain ``(x, y)``."""
        self.point_queries += 1
        if self.num_boxes == 0:
            return ()
        if x < self.min_x or x > self.max_x or y < self.min_y or y > self.max_y:
            return ()  # outside the union AABB: no box can contain the point
        return self._cells[self._ix(x) * self.ny + self._iy(y)]

    def segment_candidates(
        self, x0: float, y0: float, x1: float, y1: float
    ) -> Sequence[int]:
        """Indices of boxes whose cells the XY segment touches (deduped).

        Column-stepping traversal: for every x-cell column the segment
        crosses, compute the segment's y extent inside that column, widen
        it by a floating-point safety margin, and collect the boxes of the
        covered cells.  Conservative by construction — see module docstring.
        """
        self.segment_queries += 1
        if self.num_boxes == 0:
            return ()
        # Quick reject: segment AABB vs boxes' union AABB (inclusive).
        sx_lo, sx_hi = (x0, x1) if x0 <= x1 else (x1, x0)
        sy_lo, sy_hi = (y0, y1) if y0 <= y1 else (y1, y0)
        if (
            sx_hi < self.min_x
            or sx_lo > self.max_x
            or sy_hi < self.min_y
            or sy_lo > self.max_y
        ):
            return ()

        # Hot loop: hoist attributes/bound methods into locals and inline the
        # _ix/_iy arithmetic — same clamped-floor mapping, just cheaper.
        cells = self._cells
        grid_min_x, grid_min_y = self.min_x, self.min_y
        cell_x, cell_y = self.cell_x, self.cell_y
        nx, ny = self.nx, self.ny
        floor = math.floor
        seen: set[int] = set()
        seen_add = seen.add
        out: list[int] = []
        out_append = out.append

        ix_first = int(floor((sx_lo - grid_min_x) / cell_x))
        ix_first = 0 if ix_first < 0 else (nx - 1 if ix_first >= nx else ix_first)
        ix_last = int(floor((sx_hi - grid_min_x) / cell_x))
        ix_last = 0 if ix_last < 0 else (nx - 1 if ix_last >= nx else ix_last)
        dx = x1 - x0
        if abs(dx) < _VERTICAL_EPS:
            # Vertical in XY: one (or, at a cell boundary, two) columns,
            # spanning the segment's full y range.
            iy_first = self._iy(sy_lo)
            iy_last = self._iy(sy_hi)
            for ix in range(ix_first, ix_last + 1):
                row = ix * ny
                for iy in range(iy_first, iy_last + 1):
                    for index in cells[row + iy]:
                        if index not in seen:
                            seen_add(index)
                            out_append(index)
            return out

        slope = (y1 - y0) / dx
        for ix in range(ix_first, ix_last + 1):
            column_lo = grid_min_x + ix * cell_x
            column_hi = column_lo + cell_x
            seg_a = sx_lo if sx_lo > column_lo else column_lo
            seg_b = sx_hi if sx_hi < column_hi else column_hi
            if seg_a > seg_b:
                continue
            ya = y0 + (seg_a - x0) * slope
            yb = y0 + (seg_b - x0) * slope
            if not (math.isfinite(ya) and math.isfinite(yb)):
                # Extreme slopes can overflow; fall back to the full column.
                ya, yb = grid_min_y, self.max_y
            elif ya > yb:
                ya, yb = yb, ya
            # Widen by a margin covering FP error in the slope evaluation.
            margin = 1e-7 * (abs(ya) + abs(yb) + cell_y)
            iy_first = int(floor((ya - margin - grid_min_y) / cell_y))
            if iy_first < 0:
                iy_first = 0
            elif iy_first >= ny:
                iy_first = ny - 1
            iy_last = int(floor((yb + margin - grid_min_y) / cell_y))
            if iy_last < 0:
                iy_last = 0
            elif iy_last >= ny:
                iy_last = ny - 1
            row = ix * ny
            for iy in range(iy_first, iy_last + 1):
                for index in cells[row + iy]:
                    if index not in seen:
                        seen_add(index)
                        out_append(index)
        return out

    # ---- introspection -----------------------------------------------------

    def cell_histogram(self) -> dict[int, int]:
        """Occupancy histogram (boxes-per-cell -> cell count), for tests."""
        histogram: dict[int, int] = {}
        for cell in self._cells:
            histogram[len(cell)] = histogram.get(len(cell), 0) + 1
        return histogram
