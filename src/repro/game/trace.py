"""Game traces: the bridge between the simulator and every experiment.

The paper adds "a tracing module ... that records in a trace file all
important game information, e.g., different sets, players position, aim,
weapons, ammo, health, and speed, as well as items location, item pickups,
shootings, and killing of players", and builds a replay engine on top.
This module is that format: a :class:`GameTrace` holds per-frame avatar
snapshots plus the event stream, persists to JSONL, and exposes replay
cursors so experiments are exactly repeatable.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.core.config import FRAME_SECONDS
from repro.game.avatar import AvatarSnapshot
from repro.game.vector import Vec3

__all__ = ["ShotEvent", "KillEvent", "TraceEvent", "GameTrace", "TraceCursor"]

TRACE_FORMAT_VERSION = 1


@dataclass(frozen=True, slots=True)
class ShotEvent:
    """A shot fired (hit or miss)."""

    frame: int
    shooter_id: int
    target_id: int
    weapon: str
    hit: bool
    damage: int
    distance: float
    visible: bool


@dataclass(frozen=True, slots=True)
class KillEvent:
    """A kill: the interaction Watchmen's kill-claim verification targets."""

    frame: int
    killer_id: int
    victim_id: int
    weapon: str
    distance: float


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """Generic trace event wrapper (pickups and future event kinds)."""

    frame: int
    kind: str
    payload: dict


@dataclass
class GameTrace:
    """A recorded game: per-frame snapshots of every avatar plus events."""

    map_name: str
    num_players: int
    frame_seconds: float = FRAME_SECONDS
    seed: int = 0
    frames: list[dict[int, AvatarSnapshot]] = field(default_factory=list)
    shots: list[ShotEvent] = field(default_factory=list)
    kills: list[KillEvent] = field(default_factory=list)
    events: list[TraceEvent] = field(default_factory=list)

    # ---- recording ----------------------------------------------------------

    def record_frame(self, snapshots: dict[int, AvatarSnapshot]) -> None:
        if len(snapshots) != self.num_players:
            raise ValueError(
                f"expected {self.num_players} snapshots, got {len(snapshots)}"
            )
        self.frames.append(dict(snapshots))

    @property
    def num_frames(self) -> int:
        return len(self.frames)

    def player_ids(self) -> list[int]:
        if not self.frames:
            return []
        return sorted(self.frames[0])

    def snapshot(self, frame: int, player_id: int) -> AvatarSnapshot:
        return self.frames[frame][player_id]

    def positions_of(self, player_id: int) -> list[Vec3]:
        """The full position track of one player (for heatmaps/verification)."""
        return [frame[player_id].position for frame in self.frames]

    def shots_in_frame(self, frame: int) -> list[ShotEvent]:
        return [s for s in self.shots if s.frame == frame]

    def kills_in_frame(self, frame: int) -> list[KillEvent]:
        return [k for k in self.kills if k.frame == frame]

    # ---- persistence ---------------------------------------------------------

    def to_json_rows(self) -> Iterator[dict]:
        """The trace as JSON-safe row dicts (header first).

        This is the single serialized shape: ``save_jsonl`` writes one row
        per line, and the tape format (:mod:`repro.replay`) embeds the same
        rows so a ``.tape`` is self-contained.
        """
        yield {
            "type": "header",
            "version": TRACE_FORMAT_VERSION,
            "map": self.map_name,
            "players": self.num_players,
            "frame_seconds": self.frame_seconds,
            "seed": self.seed,
        }
        for frame_index, snapshots in enumerate(self.frames):
            yield {
                "type": "frame",
                "frame": frame_index,
                "avatars": [_snapshot_to_json(s) for s in snapshots.values()],
            }
        for shot in self.shots:
            yield {"type": "shot", **asdict(shot)}
        for kill in self.kills:
            yield {"type": "kill", **asdict(kill)}
        for event in self.events:
            yield {"type": "event", "frame": event.frame, "kind": event.kind,
                   "payload": event.payload}

    @staticmethod
    def from_json_rows(rows: "Iterable[dict]") -> "GameTrace":
        """Inverse of :meth:`to_json_rows`; raises ValueError on bad rows."""
        trace: GameTrace | None = None
        frame_rows: list[tuple[int, dict[int, AvatarSnapshot]]] = []
        for row in rows:
            row = dict(row)
            kind = row.pop("type")
            if kind == "header":
                if row["version"] != TRACE_FORMAT_VERSION:
                    raise ValueError(
                        f"unsupported trace version {row['version']}"
                    )
                trace = GameTrace(
                    map_name=row["map"],
                    num_players=row["players"],
                    frame_seconds=row["frame_seconds"],
                    seed=row["seed"],
                )
            elif trace is None:
                raise ValueError("trace rows missing header")
            elif kind == "frame":
                snapshots = {
                    s["player_id"]: _snapshot_from_json(s)
                    for s in row["avatars"]
                }
                frame_rows.append((row["frame"], snapshots))
            elif kind == "shot":
                trace.shots.append(ShotEvent(**row))
            elif kind == "kill":
                trace.kills.append(KillEvent(**row))
            elif kind == "event":
                trace.events.append(
                    TraceEvent(row["frame"], row["kind"], row["payload"])
                )
            else:
                raise ValueError(f"unknown trace row type {kind!r}")
        if trace is None:
            raise ValueError("no trace rows")
        frame_rows.sort(key=lambda pair: pair[0])
        trace.frames = [snapshots for _, snapshots in frame_rows]
        return trace

    def save_jsonl(self, path: str | Path) -> None:
        """Write the trace as one JSON object per line (header first)."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as handle:
            for row in self.to_json_rows():
                handle.write(json.dumps(row) + "\n")

    @staticmethod
    def load_jsonl(path: str | Path) -> "GameTrace":
        path = Path(path)
        with path.open("r", encoding="utf-8") as handle:
            try:
                return GameTrace.from_json_rows(
                    json.loads(line) for line in handle if line.strip()
                )
            except ValueError as error:
                if "no trace rows" in str(error):
                    raise ValueError("empty trace file") from None
                if "missing header" in str(error):
                    raise ValueError("trace file missing header line") from None
                raise


def _snapshot_to_json(snap: AvatarSnapshot) -> dict:
    return {
        "player_id": snap.player_id,
        "frame": snap.frame,
        "position": snap.position.to_tuple(),
        "velocity": snap.velocity.to_tuple(),
        "yaw": snap.yaw,
        "health": snap.health,
        "armor": snap.armor,
        "weapon": snap.weapon,
        "ammo": snap.ammo,
        "alive": snap.alive,
    }


def _snapshot_from_json(row: dict) -> AvatarSnapshot:
    return AvatarSnapshot(
        player_id=row["player_id"],
        frame=row["frame"],
        position=Vec3.from_tuple(tuple(row["position"])),
        velocity=Vec3.from_tuple(tuple(row["velocity"])),
        yaw=row["yaw"],
        health=row["health"],
        armor=row["armor"],
        weapon=row["weapon"],
        ammo=row["ammo"],
        alive=row["alive"],
    )


class TraceCursor:
    """Frame-by-frame iteration over a trace (the replay engine's clock)."""

    def __init__(self, trace: GameTrace, start_frame: int = 0) -> None:
        if not 0 <= start_frame <= trace.num_frames:
            raise ValueError("start_frame out of range")
        self.trace = trace
        self.frame = start_frame

    def __iter__(self) -> Iterator[tuple[int, dict[int, AvatarSnapshot]]]:
        return self

    def __next__(self) -> tuple[int, dict[int, AvatarSnapshot]]:
        if self.frame >= self.trace.num_frames:
            raise StopIteration
        result = (self.frame, self.trace.frames[self.frame])
        self.frame += 1
        return result

    def peek(self, ahead: int = 1) -> dict[int, AvatarSnapshot] | None:
        index = self.frame + ahead - 1
        if index >= self.trace.num_frames:
            return None
        return self.trace.frames[index]
