"""Weapons: the interaction substrate behind hit/kill claims.

Kill-claim verification in Watchmen checks "the type of weapon, the
distance, the visibility, and how long the attacker had the target in his
IS".  That requires weapons with distinct ranges, damages and firing rates,
plus a deterministic hit-resolution procedure both the simulator and the
verifiers share.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.config import FRAME_SECONDS
from repro.game.gamemap import GameMap, eye_position
from repro.game.vector import Vec3

__all__ = ["WeaponSpec", "WEAPONS", "ShotOutcome", "resolve_shot", "hit_probability"]


@dataclass(frozen=True, slots=True)
class WeaponSpec:
    """Static parameters of one weapon class."""

    name: str
    damage: int
    effective_range: float  # beyond this a hit claim is implausible
    refire_frames: int  # minimum frames between two shots
    projectile_speed: float | None  # None => hitscan (instant)
    spread: float  # radians of aim cone giving a hit chance
    ammo_per_shot: int = 1

    def __post_init__(self) -> None:
        if self.damage <= 0 or self.effective_range <= 0 or self.refire_frames <= 0:
            raise ValueError(f"bad weapon spec {self.name!r}")


#: The weapon table, Quake-III-flavoured.  ``machinegun`` is the spawn weapon.
WEAPONS: dict[str, WeaponSpec] = {
    spec.name: spec
    for spec in (
        WeaponSpec("machinegun", 7, 1600.0, 2, None, 0.035),
        WeaponSpec("shotgun", 60, 500.0, 20, None, 0.12),
        WeaponSpec("rocket-launcher", 100, 1400.0, 16, 900.0, 0.02),
        WeaponSpec("lightning-gun", 8, 768.0, 1, None, 0.03),
        WeaponSpec("railgun", 100, 3000.0, 30, None, 0.008),
    )
}

AVATAR_HIT_RADIUS = 24.0  # bounding-cylinder radius used for hit tests


@dataclass(frozen=True, slots=True)
class ShotOutcome:
    """Result of resolving one shot against one target."""

    hit: bool
    damage: int
    distance: float
    visible: bool
    aim_error: float  # radians between aim and the target direction
    travel_frames: int  # 0 for hitscan


def hit_probability(spec: WeaponSpec, aim_error: float, distance: float) -> float:
    """Deterministic hit score in [0, 1] from aim error and distance.

    The simulator thresholds this against a seeded uniform draw; the
    verifiers use it to judge whether a claimed hit was *plausible*.
    """
    if distance > spec.effective_range:
        return 0.0
    if aim_error > 4.0 * spec.spread:
        return 0.0
    aim_term = math.exp(-0.5 * (aim_error / max(spec.spread, 1e-9)) ** 2)
    range_term = 1.0 - 0.5 * (distance / spec.effective_range)
    return max(0.0, min(1.0, aim_term * range_term))


def resolve_shot(
    game_map: GameMap,
    spec: WeaponSpec,
    shooter_pos: Vec3,
    shooter_yaw: float,
    target_pos: Vec3,
    frame_seconds: float = FRAME_SECONDS,
    roll: float = 0.0,
) -> ShotOutcome:
    """Resolve a shot fired along ``shooter_yaw`` against one target.

    ``roll`` is a uniform [0,1) draw supplied by the caller (the simulator's
    seeded RNG) so resolution itself stays deterministic and replayable.
    """
    shooter_eye = eye_position(shooter_pos)
    target_eye = eye_position(target_pos)
    to_target = target_eye - shooter_eye
    distance = to_target.length()
    visible = game_map.line_of_sight(shooter_eye, target_eye)

    aim_direction = Vec3.from_yaw(shooter_yaw)
    aim_error = aim_direction.angle_to(to_target.with_z(0.0))
    # Account for the cylinder radius: close targets are easy to hit.
    angular_radius = math.atan2(AVATAR_HIT_RADIUS, max(distance, 1.0))
    aim_error = max(0.0, aim_error - angular_radius)

    probability = hit_probability(spec, aim_error, distance) if visible else 0.0
    hit = roll < probability

    travel_frames = 0
    if spec.projectile_speed is not None and spec.projectile_speed > 0:
        travel_seconds = distance / spec.projectile_speed
        travel_frames = max(0, int(round(travel_seconds / frame_seconds)))

    return ShotOutcome(
        hit=hit,
        damage=spec.damage if hit else 0,
        distance=distance,
        visible=visible,
        aim_error=aim_error,
        travel_frames=travel_frames,
    )
