"""Bot controllers that drive avatars to generate realistic traces.

The paper's traces come from 48-player Quake III deathmatches (humans and
NPCs).  Our substitute controllers reproduce the *statistical* properties
the experiments depend on:

- hotspot-concentrated presence around items and the central platform
  (Figure 1): bots seek items, and the important items cluster spatially;
- NPC vs human distinction (Figure 1a vs 1b): :class:`WaypointBot` follows
  predetermined paths ("NPCs tend to use predetermined paths and
  locations"), :class:`HumanlikeBot` mixes noisy item-seeking, combat
  pursuit and retreat;
- attention dynamics (IS churn, interaction recency): bots turn towards and
  chase visible enemies and fire at them.

Controllers are pure policies: given the world view for a frame they emit a
:class:`BotDecision` (movement intent + optional shot).  The simulator owns
all mutation, so controllers stay trivially testable.
"""

from __future__ import annotations

import math
from random import Random
from dataclasses import dataclass
from typing import Protocol

from repro.game.avatar import AvatarSnapshot
from repro.game.gamemap import GameMap, eye_position
from repro.game.items import ItemManager
from repro.game.physics import MoveIntent
from repro.game.vector import Vec3
from repro.game.weapons import WEAPONS

__all__ = ["BotDecision", "BotController", "HumanlikeBot", "WaypointBot", "LosProvider"]


class LosProvider(Protocol):
    """Anything answering line-of-sight queries (a map or a per-frame cache)."""

    def line_of_sight(self, eye: Vec3, target: Vec3) -> bool:
        ...

ENGAGE_RANGE = 1500.0
LOW_HEALTH = 35


@dataclass(frozen=True, slots=True)
class BotDecision:
    """A controller's output for one frame."""

    intent: MoveIntent
    shoot_at: int | None = None  # target player id, or None


class BotController:
    """Base class: common perception and steering helpers."""

    def __init__(
        self,
        player_id: int,
        game_map: GameMap,
        rng: Random,
        los: "LosProvider | None" = None,
    ) -> None:
        self.player_id = player_id
        self.game_map = game_map
        #: LOS provider: the map itself, or a shared per-frame cache the
        #: simulator passes so the symmetric A-sees-B test is computed once
        #: across all bots of a frame.  Results are identical either way.
        self.los: LosProvider = los if los is not None else game_map
        self.rng = rng
        self._goal: Vec3 | None = None
        self._goal_expires = 0

    # -- subclass hook -------------------------------------------------------

    def decide(
        self,
        frame: int,
        me: AvatarSnapshot,
        everyone: dict[int, AvatarSnapshot],
        items: ItemManager,
    ) -> BotDecision:
        raise NotImplementedError

    # -- shared helpers -------------------------------------------------------

    def _visible_enemies(
        self, me: AvatarSnapshot, everyone: dict[int, AvatarSnapshot]
    ) -> list[AvatarSnapshot]:
        """Alive enemies in engage range with line of sight, nearest first.

        Flat hot-loop version of :meth:`_visible_enemies_reference`: the
        range check inlines ``distance_to`` with hoisted observer
        coordinates, and the sort reuses each distance instead of
        recomputing it per comparison.  Distances are bit-identical and the
        sort is stable, so the returned order matches the reference exactly
        (property tests enforce it).
        """
        enemies: list[AvatarSnapshot] = []
        my_eye = eye_position(me.position)
        my_position = me.position
        mx, my_y, mz = my_position.x, my_position.y, my_position.z
        my_id = self.player_id
        line_of_sight = self.los.line_of_sight
        sqrt = math.sqrt
        distances: dict[int, float] = {}
        for other_id, snap in everyone.items():
            if other_id == my_id or not snap.alive:
                continue
            snap_position = snap.position
            dx = snap_position.x - mx
            dy = snap_position.y - my_y
            dz = snap_position.z - mz
            distance = sqrt(dx * dx + dy * dy + dz * dz)
            if distance > ENGAGE_RANGE:
                continue
            if line_of_sight(my_eye, eye_position(snap_position)):
                enemies.append(snap)
                distances[other_id] = distance
        enemies.sort(key=lambda s: distances[s.player_id])
        return enemies

    def _visible_enemies_reference(
        self, me: AvatarSnapshot, everyone: dict[int, AvatarSnapshot]
    ) -> list[AvatarSnapshot]:
        """The retained naive implementation — the fast path's exactness gate."""
        enemies = []
        my_eye = eye_position(me.position)
        for other_id, snap in everyone.items():
            if other_id == self.player_id or not snap.alive:
                continue
            if snap.position.distance_to(me.position) > ENGAGE_RANGE:
                continue
            if self.los.line_of_sight(my_eye, eye_position(snap.position)):
                enemies.append(snap)
        enemies.sort(key=lambda s: s.position.distance_to(me.position))
        return enemies

    def _steer_towards(
        self, me: AvatarSnapshot, goal: Vec3, speed: float = 320.0
    ) -> MoveIntent:
        offset = (goal - me.position).with_z(0.0)
        if offset.length() < 24.0:
            return MoveIntent(wish_speed=0.0, yaw=me.yaw)
        direction = offset.normalized()
        jump = goal.z > me.position.z + 20.0 and self.rng.random() < 0.3
        return MoveIntent(
            wish_direction=direction,
            wish_speed=speed,
            jump=jump,
            yaw=direction.yaw(),
        )

    @staticmethod
    def _aim_at(me: AvatarSnapshot, target: AvatarSnapshot) -> float:
        return (target.position - me.position).yaw()


class HumanlikeBot(BotController):
    """Noisy goal-driven play: items, combat pursuit, retreat.

    Priorities each frame:

    1. low health → run for the nearest health item;
    2. visible enemy → face it, strafe, fire when roughly on target;
    3. otherwise → head for a desirable item (weapons/armor weighted high,
       which concentrates presence on the hotspot platforms), with goal
       re-picks on a noisy timer.
    """

    _KIND_WEIGHTS = {"weapon": 5.0, "armor": 4.0, "powerup": 4.0, "health": 2.0, "ammo": 1.0}

    def decide(
        self,
        frame: int,
        me: AvatarSnapshot,
        everyone: dict[int, AvatarSnapshot],
        items: ItemManager,
    ) -> BotDecision:
        if me.health <= LOW_HEALTH:
            target = items.nearest_available(me.position, "health")
            if target is not None:
                return BotDecision(self._steer_towards(me, target.spec.position))

        enemies = self._visible_enemies(me, everyone)
        # Spawn-armed bots rush a real weapon first unless cornered —
        # the classic opening that funnels everyone to the weapon spots.
        if me.weapon == "machinegun" and (
            not enemies
            or enemies[0].position.distance_to(me.position) > 500.0
        ):
            weapon_item = items.nearest_available(me.position, "weapon")
            if weapon_item is not None:
                return BotDecision(
                    self._steer_towards(me, weapon_item.spec.position)
                )
        if enemies:
            enemy = enemies[0]
            yaw_to_enemy = self._aim_at(me, enemy)
            aim_error = abs(
                (yaw_to_enemy - me.yaw + math.pi) % (2.0 * math.pi) - math.pi
            )
            spec = WEAPONS.get(me.weapon, WEAPONS["machinegun"])
            shoot = (
                aim_error < 4.0 * spec.spread + 0.05
                and me.ammo >= spec.ammo_per_shot
                and self.rng.random() < 0.8
            )
            # Strafe perpendicular to the enemy while keeping aim on it.
            strafe_sign = 1.0 if (frame // 30 + self.player_id) % 2 == 0 else -1.0
            strafe = Vec3.from_yaw(yaw_to_enemy + strafe_sign * math.pi / 2.0)
            closing = Vec3.from_yaw(yaw_to_enemy)
            direction = (strafe * 0.7 + closing * 0.5).normalized()
            intent = MoveIntent(
                wish_direction=direction,
                wish_speed=300.0,
                jump=self.rng.random() < 0.05,
                yaw=yaw_to_enemy,
            )
            return BotDecision(intent, enemy.player_id if shoot else None)

        goal = self._current_goal(frame, me, items)
        return BotDecision(self._steer_towards(me, goal))

    def _current_goal(
        self, frame: int, me: AvatarSnapshot, items: ItemManager
    ) -> Vec3:
        if self._goal is not None and frame < self._goal_expires:
            if self._goal.distance_to(me.position) > 48.0:
                return self._goal
        candidates = items.available_items()
        if candidates:
            weights = [
                self._KIND_WEIGHTS.get(inst.spec.kind, 1.0)
                / (1.0 + inst.spec.position.distance_to(me.position) / 800.0)
                for inst in candidates
            ]
            chosen = self.rng.choices(candidates, weights=weights, k=1)[0]
            self._goal = chosen.spec.position
        else:
            self._goal = self.rng.choice(self.game_map.respawn_points)
        self._goal_expires = frame + self.rng.randint(60, 200)
        return self._goal


class WaypointBot(BotController):
    """An NPC that patrols a fixed waypoint loop, firing opportunistically.

    The loop is derived deterministically from the map's items and respawn
    points, giving the ridge-like NPC heatmap of Figure 1(b).
    """

    def __init__(
        self,
        player_id: int,
        game_map: GameMap,
        rng: Random,
        los: LosProvider | None = None,
    ) -> None:
        super().__init__(player_id, game_map, rng, los=los)
        anchors = list(game_map.item_positions()) + list(game_map.respawn_points)
        if not anchors:
            raise ValueError("map has no anchors to build a patrol loop")
        start = player_id % len(anchors)
        stride = 1 + player_id % 3
        self.waypoints = [anchors[(start + i * stride) % len(anchors)] for i in range(6)]
        self._index = 0

    def decide(
        self,
        frame: int,
        me: AvatarSnapshot,
        everyone: dict[int, AvatarSnapshot],
        items: ItemManager,
    ) -> BotDecision:
        enemies = self._visible_enemies(me, everyone)
        shoot_at = None
        yaw = None
        if enemies:
            enemy = enemies[0]
            yaw = self._aim_at(me, enemy)
            spec = WEAPONS.get(me.weapon, WEAPONS["machinegun"])
            if me.ammo >= spec.ammo_per_shot and self.rng.random() < 0.5:
                shoot_at = enemy.player_id

        waypoint = self.waypoints[self._index]
        if waypoint.distance_to(me.position) < 64.0:
            self._index = (self._index + 1) % len(self.waypoints)
            waypoint = self.waypoints[self._index]
        intent = self._steer_towards(me, waypoint, speed=280.0)
        if yaw is not None:
            intent = MoveIntent(
                wish_direction=intent.wish_direction,
                wish_speed=intent.wish_speed,
                jump=intent.jump,
                yaw=yaw,
            )
        return BotDecision(intent, shoot_at)
