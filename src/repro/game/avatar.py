"""Avatar state: everything an update message can carry about a player.

"The state of an avatar typically includes its position, aim, objects it
owns, health, etc." — this module defines that state, its snapshot form
(what goes on the wire) and the delta between snapshots (updates are
delta-coded in Quake III and in our size model).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.game.vector import Vec3

__all__ = ["AvatarState", "AvatarSnapshot", "snapshot_delta_fields"]

MAX_HEALTH = 100
MAX_ARMOR = 100


@dataclass
class AvatarState:
    """Mutable, authoritative state of one avatar inside the simulator."""

    player_id: int
    position: Vec3 = field(default_factory=Vec3)
    velocity: Vec3 = field(default_factory=Vec3)
    yaw: float = 0.0
    health: int = MAX_HEALTH
    armor: int = 0
    weapon: str = "machinegun"
    ammo: int = 100
    on_ground: bool = True
    alive: bool = True
    kills: int = 0
    deaths: int = 0
    respawn_at_frame: int | None = None

    def take_damage(self, amount: int) -> int:
        """Apply ``amount`` damage (armor absorbs 2/3); return health dealt."""
        if amount < 0:
            raise ValueError("damage must be non-negative")
        if not self.alive:
            return 0
        absorbed = min(self.armor, (amount * 2) // 3)
        self.armor -= absorbed
        dealt = amount - absorbed
        self.health -= dealt
        if self.health <= 0:
            self.health = 0
            self.alive = False
        return dealt

    def heal(self, amount: int, cap: int = MAX_HEALTH) -> None:
        self.health = min(cap, self.health + amount)

    def respawn(self, position: Vec3, frame: int) -> None:
        self.position = position
        self.velocity = Vec3.zero()
        self.health = MAX_HEALTH
        self.armor = 0
        self.weapon = "machinegun"
        self.ammo = 100
        self.alive = True
        self.respawn_at_frame = frame

    def snapshot(self, frame: int) -> "AvatarSnapshot":
        return AvatarSnapshot(
            player_id=self.player_id,
            frame=frame,
            position=self.position,
            velocity=self.velocity,
            yaw=self.yaw,
            health=self.health,
            armor=self.armor,
            weapon=self.weapon,
            ammo=self.ammo,
            alive=self.alive,
        )


@dataclass(frozen=True, slots=True)
class AvatarSnapshot:
    """Immutable per-frame view of an avatar — the payload of state updates."""

    player_id: int
    frame: int
    position: Vec3
    velocity: Vec3
    yaw: float
    health: int
    armor: int
    weapon: str
    ammo: int
    alive: bool

    def at_frame(self, frame: int) -> "AvatarSnapshot":
        return replace(self, frame=frame)

    def position_only(self) -> "AvatarSnapshot":
        """Strip everything but identity/position — the 'Others' update."""
        return AvatarSnapshot(
            player_id=self.player_id,
            frame=self.frame,
            position=self.position,
            velocity=Vec3.zero(),
            yaw=0.0,
            health=0,
            armor=0,
            weapon="",
            ammo=0,
            alive=self.alive,
        )


def snapshot_delta_fields(
    old: AvatarSnapshot | None, new: AvatarSnapshot
) -> list[str]:
    """Field names that changed between two snapshots (delta coding).

    Quake III updates are delta-coded: "updates show high temporal
    similarities and can be delta-coded, only including the differences".
    The wire-size model charges per changed field.
    """
    if old is None or old.player_id != new.player_id:
        return [
            "position",
            "velocity",
            "yaw",
            "health",
            "armor",
            "weapon",
            "ammo",
            "alive",
        ]
    changed: list[str] = []
    if old.position != new.position:
        changed.append("position")
    if old.velocity != new.velocity:
        changed.append("velocity")
    if old.yaw != new.yaw:
        changed.append("yaw")
    if old.health != new.health:
        changed.append("health")
    if old.armor != new.armor:
        changed.append("armor")
    if old.weapon != new.weapon:
        changed.append("weapon")
    if old.ammo != new.ammo:
        changed.append("ammo")
    if old.alive != new.alive:
        changed.append("alive")
    return changed
