"""Small 3-D vector algebra used throughout the game substrate.

The game world is metric: positions are in Quake units (roughly 1 unit =
1 inch; an avatar is ~56 units tall, running speed is 320 units/s).  A tiny
immutable vector class keeps the simulator free of numpy so that traces can
be generated deterministically and cheaply, and hashed for replay checks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

__all__ = ["Vec3", "clamp"]


def clamp(value: float, low: float, high: float) -> float:
    """Clamp ``value`` into the inclusive range [low, high]."""
    if low > high:
        raise ValueError(f"empty clamp range [{low}, {high}]")
    return low if value < low else high if value > high else value


@dataclass(frozen=True, slots=True)
class Vec3:
    """An immutable 3-D vector of floats."""

    x: float = 0.0
    y: float = 0.0
    z: float = 0.0

    # ---- construction helpers -------------------------------------------

    @staticmethod
    def zero() -> "Vec3":
        return Vec3(0.0, 0.0, 0.0)

    @staticmethod
    def from_yaw(yaw: float, length: float = 1.0) -> "Vec3":
        """A horizontal direction vector from a yaw angle (radians)."""
        return Vec3(math.cos(yaw) * length, math.sin(yaw) * length, 0.0)

    # ---- arithmetic ------------------------------------------------------

    def __add__(self, other: "Vec3") -> "Vec3":
        return Vec3(self.x + other.x, self.y + other.y, self.z + other.z)

    def __sub__(self, other: "Vec3") -> "Vec3":
        return Vec3(self.x - other.x, self.y - other.y, self.z - other.z)

    def __mul__(self, scalar: float) -> "Vec3":
        return Vec3(self.x * scalar, self.y * scalar, self.z * scalar)

    __rmul__ = __mul__

    def __truediv__(self, scalar: float) -> "Vec3":
        return Vec3(self.x / scalar, self.y / scalar, self.z / scalar)

    def __neg__(self) -> "Vec3":
        return Vec3(-self.x, -self.y, -self.z)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y
        yield self.z

    # ---- geometry --------------------------------------------------------

    def dot(self, other: "Vec3") -> float:
        return self.x * other.x + self.y * other.y + self.z * other.z

    def cross(self, other: "Vec3") -> "Vec3":
        return Vec3(
            self.y * other.z - self.z * other.y,
            self.z * other.x - self.x * other.z,
            self.x * other.y - self.y * other.x,
        )

    def length(self) -> float:
        return math.sqrt(self.dot(self))

    def length_squared(self) -> float:
        return self.dot(self)

    def horizontal_length(self) -> float:
        """Length of the XY projection (ground speed)."""
        return math.hypot(self.x, self.y)

    def distance_to(self, other: "Vec3") -> float:
        return (self - other).length()

    def normalized(self) -> "Vec3":
        norm = self.length()
        if norm < 1e-12:  # near-denormal vectors have no usable direction
            return Vec3.zero()
        return self / norm

    def lerp(self, other: "Vec3", t: float) -> "Vec3":
        """Linear interpolation: self at t=0, other at t=1."""
        return self + (other - self) * t

    def with_z(self, z: float) -> "Vec3":
        return Vec3(self.x, self.y, z)

    def yaw(self) -> float:
        """Yaw angle (radians) of the XY projection."""
        return math.atan2(self.y, self.x)

    def angle_to(self, other: "Vec3") -> float:
        """Angle (radians) between self and other; 0 for degenerate input."""
        denom = self.length() * other.length()
        if denom == 0.0:
            return 0.0
        cosine = clamp(self.dot(other) / denom, -1.0, 1.0)
        return math.acos(cosine)

    # ---- serialisation ---------------------------------------------------

    def to_tuple(self) -> tuple[float, float, float]:
        return (self.x, self.y, self.z)

    @staticmethod
    def from_tuple(values: tuple[float, float, float]) -> "Vec3":
        return Vec3(float(values[0]), float(values[1]), float(values[2]))

    def quantized(self, grid: float = 0.125) -> "Vec3":
        """Snap each component to ``grid`` (wire-format quantization)."""
        if grid <= 0:
            raise ValueError("grid must be positive")
        return Vec3(
            round(self.x / grid) * grid,
            round(self.y / grid) * grid,
            round(self.z / grid) * grid,
        )
