"""Interest management: vision cones, attention metric, IS/VS/Others.

This implements Section III-A of the paper (Figure 2):

- **Vision Set (VS)** — avatars inside a spherical cone centred on the
  avatar's aim (±60° in Quake III), made *slightly larger* than the actual
  field of view to survive rapid spins, and occlusion-culled against map
  geometry ("avatars ... behind a wall do not appear in his vision set").
- **Interest Set (IS)** — the top-5 avatars of the VS by an attention
  metric combining proximity, aim and interaction recency (Donnybrook's
  metric).  IS members are removed from the VS.
- **Others** — everyone else; they only ever yield 1 Hz position updates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.config import INTEREST_SET_SIZE, VISION_HALF_ANGLE, VISION_SLACK
from repro.game.avatar import AvatarSnapshot
from repro.game.gamemap import GameMap, eye_position
from repro.game.vector import Vec3

__all__ = [
    "InterestConfig",
    "SetKind",
    "InterestSets",
    "attention_score",
    "in_vision_cone",
    "compute_sets",
    "InteractionRecency",
]


class SetKind:
    """The three subscription classes of the Watchmen model."""

    INTEREST = "IS"
    VISION = "VS"
    OTHER = "OTHER"

    ALL = (INTEREST, VISION, OTHER)


@dataclass(frozen=True, slots=True)
class InterestConfig:
    """Tunables of the subscription model (paper defaults)."""

    vision_half_angle: float = VISION_HALF_ANGLE  # Quake III ±60°
    vision_slack: float = VISION_SLACK  # enlargement for fast spins
    vision_radius: float = 2500.0
    interest_size: int = INTEREST_SET_SIZE  # "can be fixed (e.g., 5)"
    recency_halflife_frames: int = 60  # interaction recency decay
    proximity_scale: float = 800.0  # distance at which proximity ~ 0.5

    def __post_init__(self) -> None:
        if self.interest_size < 0:
            raise ValueError("interest_size must be non-negative")
        if not 0 < self.vision_half_angle <= math.pi:
            raise ValueError("vision_half_angle out of range")

    @property
    def effective_half_angle(self) -> float:
        return min(math.pi, self.vision_half_angle + self.vision_slack)


@dataclass(frozen=True, slots=True)
class InterestSets:
    """One player's partition of all other players for one frame."""

    player_id: int
    frame: int
    interest: frozenset[int]
    vision: frozenset[int]
    others: frozenset[int]

    def kind_of(self, other_id: int) -> str:
        if other_id in self.interest:
            return SetKind.INTEREST
        if other_id in self.vision:
            return SetKind.VISION
        return SetKind.OTHER

    def all_ids(self) -> frozenset[int]:
        return self.interest | self.vision | self.others


class InteractionRecency:
    """Tracks the last frame each pair of players interacted (shot/damage).

    The attention metric uses "interaction recency": a player who just shot
    at you (or you at him) stays interesting for a while even if he moves
    away or behind you.
    """

    def __init__(self) -> None:
        self._last: dict[tuple[int, int], int] = {}

    def record(self, a: int, b: int, frame: int) -> None:
        """Record an interaction between players ``a`` and ``b`` at ``frame``."""
        key = (a, b) if a <= b else (b, a)
        self._last[key] = frame

    def frames_since(self, a: int, b: int, frame: int) -> int | None:
        key = (a, b) if a <= b else (b, a)
        last = self._last.get(key)
        if last is None or last > frame:
            return None
        return frame - last

    def score(self, a: int, b: int, frame: int, halflife: int) -> float:
        """Exponentially decayed recency in [0, 1]."""
        since = self.frames_since(a, b, frame)
        if since is None:
            return 0.0
        return 0.5 ** (since / max(1, halflife))


def in_vision_cone(
    observer: AvatarSnapshot,
    target: AvatarSnapshot,
    config: InterestConfig,
    slack: bool = True,
) -> bool:
    """Is ``target`` inside ``observer``'s (possibly enlarged) vision cone?"""
    to_target = eye_position(target.position) - eye_position(observer.position)
    distance = to_target.length()
    if distance > config.vision_radius or distance == 0.0:
        return False
    aim = Vec3.from_yaw(observer.yaw)
    half_angle = config.effective_half_angle if slack else config.vision_half_angle
    return aim.angle_to(to_target) <= half_angle


def attention_score(
    observer: AvatarSnapshot,
    target: AvatarSnapshot,
    frame: int,
    config: InterestConfig,
    recency: InteractionRecency | None = None,
) -> float:
    """Donnybrook-style attention: proximity + aim + interaction recency."""
    offset = target.position - observer.position
    distance = offset.length()
    proximity = 1.0 / (1.0 + distance / config.proximity_scale)
    aim_error = Vec3.from_yaw(observer.yaw).angle_to(offset.with_z(0.0))
    aim = max(0.0, 1.0 - aim_error / math.pi)
    recent = 0.0
    if recency is not None:
        recent = recency.score(
            observer.player_id, target.player_id, frame, config.recency_halflife_frames
        )
    return proximity + aim + recent


def compute_sets(
    observer: AvatarSnapshot,
    everyone: dict[int, AvatarSnapshot],
    game_map: GameMap,
    frame: int,
    config: InterestConfig | None = None,
    recency: InteractionRecency | None = None,
) -> InterestSets:
    """Partition all other players into IS / VS / Others for ``observer``.

    Only avatars in the vision set are IS candidates ("preventing the player
    to obtain frequent and accurate information about avatars he cannot
    see"), and IS members are removed from the VS ("automatically removed
    from its vision set").
    """
    config = config or InterestConfig()
    visible: list[int] = []
    others: set[int] = set()
    observer_eye = eye_position(observer.position)
    for other_id, snap in everyone.items():
        if other_id == observer.player_id:
            continue
        if not snap.alive:
            others.add(other_id)
            continue
        if in_vision_cone(observer, snap, config) and game_map.line_of_sight(
            observer_eye, eye_position(snap.position)
        ):
            visible.append(other_id)
        else:
            others.add(other_id)

    scored = sorted(
        visible,
        key=lambda oid: attention_score(
            observer, everyone[oid], frame, config, recency
        ),
        reverse=True,
    )
    interest = frozenset(scored[: config.interest_size])
    vision = frozenset(oid for oid in visible if oid not in interest)
    return InterestSets(
        player_id=observer.player_id,
        frame=frame,
        interest=interest,
        vision=vision,
        others=frozenset(others),
    )
