"""Interest management: vision cones, attention metric, IS/VS/Others.

This implements Section III-A of the paper (Figure 2):

- **Vision Set (VS)** — avatars inside a spherical cone centred on the
  avatar's aim (±60° in Quake III), made *slightly larger* than the actual
  field of view to survive rapid spins, and occlusion-culled against map
  geometry ("avatars ... behind a wall do not appear in his vision set").
- **Interest Set (IS)** — the top-5 avatars of the VS by an attention
  metric combining proximity, aim and interaction recency (Donnybrook's
  metric).  IS members are removed from the VS.
- **Others** — everyone else; they only ever yield 1 Hz position updates.

Performance architecture (see docs/PERFORMANCE.md): the classification
runs every 50 ms frame for every player, so the hot path is organised as

- :class:`ObserverFrame` — per-observer hoisted state (eye position, aim
  vector, squared-distance cull bound) computed once per observer instead
  of once per (observer, target) pair;
- :class:`LosCache` — a per-frame symmetric memo over
  :meth:`GameMap.line_of_sight` (LOS(a, b) == LOS(b, a) because the map
  canonicalises endpoint order), shared across all observers of a frame;
- :func:`compute_all_sets` — the batched entry point sessions, analyses
  and baselines use: target eye positions, alive filtering and the LOS
  cache are computed once for the whole roster;
- top-k selection by :func:`heapq.nlargest`, which the stdlib guarantees
  equivalent to ``sorted(..., reverse=True)[:k]`` (stable ties included).

Every fast path is **exactness-gated**: :func:`compute_sets_reference`
retains the naive per-pair implementation verbatim, and property tests
assert bit-identical :class:`InterestSets` across random maps, yaws and
player counts.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

from repro.core.config import INTEREST_SET_SIZE, VISION_HALF_ANGLE, VISION_SLACK
from repro.game.avatar import AvatarSnapshot
from repro.game.gamemap import GameMap, eye_position
from repro.game.vector import Vec3, clamp
from repro.obs.registry import get_registry

__all__ = [
    "InterestConfig",
    "SetKind",
    "InterestSets",
    "ObserverFrame",
    "LosCache",
    "attention_score",
    "in_vision_cone",
    "compute_sets",
    "compute_all_sets",
    "compute_sets_reference",
    "InteractionRecency",
]


class SetKind:
    """The three subscription classes of the Watchmen model."""

    INTEREST = "IS"
    VISION = "VS"
    OTHER = "OTHER"

    ALL = (INTEREST, VISION, OTHER)


@dataclass(frozen=True, slots=True)
class InterestConfig:
    """Tunables of the subscription model (paper defaults)."""

    vision_half_angle: float = VISION_HALF_ANGLE  # Quake III ±60°
    vision_slack: float = VISION_SLACK  # enlargement for fast spins
    vision_radius: float = 2500.0
    interest_size: int = INTEREST_SET_SIZE  # "can be fixed (e.g., 5)"
    recency_halflife_frames: int = 60  # interaction recency decay
    proximity_scale: float = 800.0  # distance at which proximity ~ 0.5

    def __post_init__(self) -> None:
        if self.interest_size < 0:
            raise ValueError("interest_size must be non-negative")
        if not 0 < self.vision_half_angle <= math.pi:
            raise ValueError("vision_half_angle out of range")

    @property
    def effective_half_angle(self) -> float:
        return min(math.pi, self.vision_half_angle + self.vision_slack)


@dataclass(frozen=True, slots=True)
class InterestSets:
    """One player's partition of all other players for one frame."""

    player_id: int
    frame: int
    interest: frozenset[int]
    vision: frozenset[int]
    others: frozenset[int]

    def kind_of(self, other_id: int) -> str:
        if other_id in self.interest:
            return SetKind.INTEREST
        if other_id in self.vision:
            return SetKind.VISION
        return SetKind.OTHER

    def all_ids(self) -> frozenset[int]:
        return self.interest | self.vision | self.others


class InteractionRecency:
    """Tracks the last frame each pair of players interacted (shot/damage).

    The attention metric uses "interaction recency": a player who just shot
    at you (or you at him) stays interesting for a while even if he moves
    away or behind you.
    """

    def __init__(self) -> None:
        self._last: dict[tuple[int, int], int] = {}

    def record(self, a: int, b: int, frame: int) -> None:
        """Record an interaction between players ``a`` and ``b`` at ``frame``."""
        key = (a, b) if a <= b else (b, a)
        self._last[key] = frame

    def frames_since(self, a: int, b: int, frame: int) -> int | None:
        key = (a, b) if a <= b else (b, a)
        last = self._last.get(key)
        if last is None or last > frame:
            return None
        return frame - last

    def score(self, a: int, b: int, frame: int, halflife: int) -> float:
        """Exponentially decayed recency in [0, 1]."""
        since = self.frames_since(a, b, frame)
        if since is None:
            return 0.0
        return 0.5 ** (since / max(1, halflife))


class LosCache:
    """Per-frame symmetric line-of-sight memo shared across observers.

    LOS depends only on the two eye positions and the (static) solids, and
    :meth:`GameMap.line_of_sight` canonicalises endpoint order, so one
    cached boolean serves both LOS(a, b) and LOS(b, a).  The cache is
    cleared at each :meth:`begin_frame` to bound memory; entries would
    actually stay valid as long as the map's solids are untouched (see
    docs/PERFORMANCE.md for the invalidation rules).
    """

    __slots__ = ("game_map", "hits", "misses", "_frame", "_memo")

    def __init__(self, game_map: GameMap) -> None:
        self.game_map = game_map
        self.hits = 0
        self.misses = 0
        self._frame: int | None = None
        self._memo: dict[
            tuple[tuple[float, float, float], tuple[float, float, float]], bool
        ] = {}

    def begin_frame(self, frame: int) -> None:
        """Start a new frame: drop the previous frame's entries."""
        if frame != self._frame:
            self._frame = frame
            self._memo.clear()

    def line_of_sight(self, eye: Vec3, target: Vec3) -> bool:
        key_a = (eye.x, eye.y, eye.z)
        key_b = (target.x, target.y, target.z)
        key = (key_a, key_b) if key_a <= key_b else (key_b, key_a)
        cached = self._memo.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        result = self.game_map.line_of_sight(eye, target)
        self._memo[key] = result
        return result


class ObserverFrame:
    """Hoisted per-observer state for one frame of classification.

    The naive path rebuilds ``eye_position(observer.position)`` and
    ``Vec3.from_yaw(observer.yaw)`` for *every* target; this computes them
    once.  The scalar methods below mirror the reference arithmetic
    operation-for-operation (same order, same intermediate expressions) so
    their results are bit-identical — the property tests enforce it.
    """

    __slots__ = (
        "snapshot",
        "config",
        "eye",
        "aim",
        "aim_length",
        "cull_radius_sq",
        "half_angle_slack",
        "half_angle_strict",
    )

    def __init__(self, observer: AvatarSnapshot, config: InterestConfig) -> None:
        self.snapshot = observer
        self.config = config
        self.eye = eye_position(observer.position)
        self.aim = Vec3.from_yaw(observer.yaw)
        self.aim_length = self.aim.length()
        # Conservative squared-distance cull: anything beyond this is
        # certainly outside vision_radius, so the exact sqrt-based check
        # only runs for pairs that might be visible.  The 1e-6 slack keeps
        # the cull strictly weaker than the exact comparison.
        cull = config.vision_radius * 1.000001
        self.cull_radius_sq = cull * cull
        self.half_angle_slack = config.effective_half_angle
        self.half_angle_strict = config.vision_half_angle

    def in_vision_cone(self, target: AvatarSnapshot, slack: bool = True) -> bool:
        """Exact mirror of :func:`in_vision_cone` with hoisted observer state."""
        return self._cone_check(eye_position(target.position), slack)

    def _cone_check(self, target_eye: Vec3, slack: bool = True) -> bool:
        """Cone test against a precomputed target eye position."""
        eye = self.eye
        dx = target_eye.x - eye.x
        dy = target_eye.y - eye.y
        dz = target_eye.z - eye.z
        dist_sq = dx * dx + dy * dy + dz * dz
        if dist_sq > self.cull_radius_sq:
            return False  # early-out; exact check below is strictly stronger
        distance = math.sqrt(dist_sq)
        if distance > self.config.vision_radius or distance == 0.0:
            return False
        half_angle = self.half_angle_slack if slack else self.half_angle_strict
        aim = self.aim
        denom = self.aim_length * distance
        if denom == 0.0:
            return True  # angle_to() defines the degenerate angle as 0
        cosine = clamp((aim.x * dx + aim.y * dy + aim.z * dz) / denom, -1.0, 1.0)
        return math.acos(cosine) <= half_angle

    def attention_score(
        self,
        target: AvatarSnapshot,
        frame: int,
        recency: InteractionRecency | None = None,
    ) -> float:
        """Exact mirror of :func:`attention_score` with hoisted observer state."""
        observer = self.snapshot
        config = self.config
        dx = target.position.x - observer.position.x
        dy = target.position.y - observer.position.y
        dz = target.position.z - observer.position.z
        distance = math.sqrt(dx * dx + dy * dy + dz * dz)
        proximity = 1.0 / (1.0 + distance / config.proximity_scale)
        # aim_error = aim.angle_to(offset.with_z(0.0)), unrolled.
        aim = self.aim
        horizontal = math.sqrt(dx * dx + dy * dy + 0.0 * 0.0)
        denom = self.aim_length * horizontal
        if denom == 0.0:
            aim_error = 0.0
        else:
            cosine = clamp(
                (aim.x * dx + aim.y * dy + aim.z * 0.0) / denom, -1.0, 1.0
            )
            aim_error = math.acos(cosine)
        aim_term = max(0.0, 1.0 - aim_error / math.pi)
        recent = 0.0
        if recency is not None:
            recent = recency.score(
                observer.player_id,
                target.player_id,
                frame,
                config.recency_halflife_frames,
            )
        return proximity + aim_term + recent

    def attention_scores(
        self,
        everyone: dict[int, AvatarSnapshot],
        candidate_ids: list[int],
        frame: int,
        recency: InteractionRecency | None = None,
    ) -> dict[int, float]:
        """Batched :meth:`attention_score` over a flat candidate list.

        One pass with every observer constant (position components, aim
        vector, config scalars, math functions) hoisted into locals — the
        per-target arithmetic mirrors the scalar method expression for
        expression, so each score is bit-identical to
        :meth:`attention_score` (property tests enforce it).
        """
        observer = self.snapshot
        config = self.config
        position = observer.position
        opx, opy, opz = position.x, position.y, position.z
        aim = self.aim
        ax, ay, az = aim.x, aim.y, aim.z
        aim_length = self.aim_length
        proximity_scale = config.proximity_scale
        halflife = config.recency_halflife_frames
        observer_id = observer.player_id
        sqrt = math.sqrt
        acos = math.acos
        pi = math.pi
        scores: dict[int, float] = {}
        for other_id in candidate_ids:
            target = everyone[other_id]
            target_position = target.position
            dx = target_position.x - opx
            dy = target_position.y - opy
            dz = target_position.z - opz
            distance = sqrt(dx * dx + dy * dy + dz * dz)
            proximity = 1.0 / (1.0 + distance / proximity_scale)
            horizontal = sqrt(dx * dx + dy * dy + 0.0 * 0.0)
            denom = aim_length * horizontal
            if denom == 0.0:
                aim_error = 0.0
            else:
                cosine = (ax * dx + ay * dy + az * 0.0) / denom
                cosine = (
                    -1.0 if cosine < -1.0 else 1.0 if cosine > 1.0 else cosine
                )
                aim_error = acos(cosine)
            aim_term = max(0.0, 1.0 - aim_error / pi)
            recent = 0.0
            if recency is not None:
                recent = recency.score(
                    observer_id, target.player_id, frame, halflife
                )
            scores[other_id] = proximity + aim_term + recent
        return scores


def in_vision_cone(
    observer: AvatarSnapshot,
    target: AvatarSnapshot,
    config: InterestConfig,
    slack: bool = True,
    observer_frame: ObserverFrame | None = None,
) -> bool:
    """Is ``target`` inside ``observer``'s (possibly enlarged) vision cone?

    Callers classifying many targets for one observer should build one
    :class:`ObserverFrame` and pass it (or call its method directly) so the
    observer's eye position and aim vector are not rebuilt per target.
    """
    frame = observer_frame or ObserverFrame(observer, config)
    return frame.in_vision_cone(target, slack)


def attention_score(
    observer: AvatarSnapshot,
    target: AvatarSnapshot,
    frame: int,
    config: InterestConfig,
    recency: InteractionRecency | None = None,
    observer_frame: ObserverFrame | None = None,
) -> float:
    """Donnybrook-style attention: proximity + aim + interaction recency."""
    oframe = observer_frame or ObserverFrame(observer, config)
    return oframe.attention_score(target, frame, recency)


def _classify(
    oframe: ObserverFrame,
    everyone: dict[int, AvatarSnapshot],
    los: GameMap | LosCache,
    frame: int,
    config: InterestConfig,
    recency: InteractionRecency | None,
    eyes: dict[int, Vec3] | None,
) -> InterestSets:
    """Shared classification core of the single and batched entry points."""
    visible: list[int] = []
    others: set[int] = set()
    observer_id = oframe.snapshot.player_id
    observer_eye = oframe.eye
    for other_id, snap in everyone.items():
        if other_id == observer_id:
            continue
        if not snap.alive:
            others.add(other_id)
            continue
        target_eye = eyes[other_id] if eyes is not None else eye_position(
            snap.position
        )
        if oframe._cone_check(target_eye) and los.line_of_sight(
            observer_eye, target_eye
        ):
            visible.append(other_id)
        else:
            others.add(other_id)

    if len(visible) <= config.interest_size:
        # Fewer visible players than IS slots: everyone visible is in the
        # IS, no scoring needed (the reference's top-k of <= k items).
        interest = frozenset(visible)
        vision: frozenset[int] = frozenset()
    else:
        # Scores come from the flat batch kernel (bit-identical to the
        # per-target method); heapq.nlargest is documented equivalent to
        # sorted(iterable, key=key, reverse=True)[:n] — ties included — so
        # the selected top-k set matches the reference full sort exactly.
        scores = oframe.attention_scores(everyone, visible, frame, recency)
        top = heapq.nlargest(
            config.interest_size,
            visible,
            key=scores.__getitem__,
        )
        interest = frozenset(top)
        vision = frozenset(oid for oid in visible if oid not in interest)
    return InterestSets(
        player_id=observer_id,
        frame=frame,
        interest=interest,
        vision=vision,
        others=frozenset(others),
    )


def compute_sets(
    observer: AvatarSnapshot,
    everyone: dict[int, AvatarSnapshot],
    game_map: GameMap,
    frame: int,
    config: InterestConfig | None = None,
    recency: InteractionRecency | None = None,
    los: LosCache | None = None,
) -> InterestSets:
    """Partition all other players into IS / VS / Others for ``observer``.

    Only avatars in the vision set are IS candidates ("preventing the player
    to obtain frequent and accurate information about avatars he cannot
    see"), and IS members are removed from the VS ("automatically removed
    from its vision set").

    ``los`` optionally supplies a per-frame :class:`LosCache` shared with
    other observers of the same frame (the session and simulator loops pass
    one); results are identical either way.
    """
    config = config or InterestConfig()
    oframe = ObserverFrame(observer, config)
    return _classify(
        oframe, everyone, los if los is not None else game_map, frame, config,
        recency, eyes=None,
    )


def compute_all_sets(
    everyone: dict[int, AvatarSnapshot],
    game_map: GameMap,
    frame: int,
    config: InterestConfig | None = None,
    recency: InteractionRecency | None = None,
    observers: list[int] | None = None,
    los: LosCache | None = None,
) -> dict[int, InterestSets]:
    """Batched classification: IS/VS/Others for every observer of a frame.

    The shared work — target eye positions, the symmetric LOS cache, the
    per-observer hoisting — is done once for the whole roster instead of
    once per :func:`compute_sets` call.  Returns exactly
    ``{oid: compute_sets(everyone[oid], everyone, ...) for oid in observers}``
    (observers defaults to every player in ``everyone``, in dict order).
    """
    config = config or InterestConfig()
    obs = get_registry()
    with obs.histogram("interest.compute_all_seconds").time():
        if los is None:
            los = LosCache(game_map)
            los.begin_frame(frame)
        hits_before, misses_before = los.hits, los.misses
        eyes = {pid: eye_position(snap.position) for pid, snap in everyone.items()}
        ids = observers if observers is not None else list(everyone)
        result: dict[int, InterestSets] = {}
        for observer_id in ids:
            oframe = ObserverFrame(everyone[observer_id], config)
            result[observer_id] = _classify(
                oframe, everyone, los, frame, config, recency, eyes
            )
    obs.counter("interest.pairs").inc(len(ids) * max(0, len(everyone) - 1))
    obs.counter("interest.los_cache_hits").inc(los.hits - hits_before)
    obs.counter("interest.los_cache_misses").inc(los.misses - misses_before)
    return result


def compute_sets_reference(
    observer: AvatarSnapshot,
    everyone: dict[int, AvatarSnapshot],
    game_map: GameMap,
    frame: int,
    config: InterestConfig | None = None,
    recency: InteractionRecency | None = None,
) -> InterestSets:
    """The retained naive implementation — the fast path's exactness gate.

    Per-pair eye/aim recomputation, full sort, linear LOS scan
    (:meth:`GameMap.line_of_sight_naive`).  Kept verbatim so property tests
    can assert the optimised paths produce bit-identical results.
    """
    config = config or InterestConfig()
    visible: list[int] = []
    others: set[int] = set()
    observer_eye = eye_position(observer.position)
    for other_id, snap in everyone.items():
        if other_id == observer.player_id:
            continue
        if not snap.alive:
            others.add(other_id)
            continue
        if _in_vision_cone_reference(
            observer, snap, config
        ) and game_map.line_of_sight_naive(
            observer_eye, eye_position(snap.position)
        ):
            visible.append(other_id)
        else:
            others.add(other_id)

    scored = sorted(
        visible,
        key=lambda oid: _attention_score_reference(
            observer, everyone[oid], frame, config, recency
        ),
        reverse=True,
    )
    interest = frozenset(scored[: config.interest_size])
    vision = frozenset(oid for oid in visible if oid not in interest)
    return InterestSets(
        player_id=observer.player_id,
        frame=frame,
        interest=interest,
        vision=vision,
        others=frozenset(others),
    )


def _in_vision_cone_reference(
    observer: AvatarSnapshot,
    target: AvatarSnapshot,
    config: InterestConfig,
    slack: bool = True,
) -> bool:
    """Original per-pair cone test (reference semantics, kept verbatim)."""
    to_target = eye_position(target.position) - eye_position(observer.position)
    distance = to_target.length()
    if distance > config.vision_radius or distance == 0.0:
        return False
    aim = Vec3.from_yaw(observer.yaw)
    half_angle = config.effective_half_angle if slack else config.vision_half_angle
    return aim.angle_to(to_target) <= half_angle


def _attention_score_reference(
    observer: AvatarSnapshot,
    target: AvatarSnapshot,
    frame: int,
    config: InterestConfig,
    recency: InteractionRecency | None = None,
) -> float:
    """Original per-pair attention metric (reference semantics, verbatim)."""
    offset = target.position - observer.position
    distance = offset.length()
    proximity = 1.0 / (1.0 + distance / config.proximity_scale)
    aim_error = Vec3.from_yaw(observer.yaw).angle_to(offset.with_z(0.0))
    aim = max(0.0, 1.0 - aim_error / math.pi)
    recent = 0.0
    if recency is not None:
        recent = recency.score(
            observer.player_id, target.player_id, frame, config.recency_halflife_frames
        )
    return proximity + aim + recent
