"""Item lifecycle: pickups and respawn timers.

Items are what makes presence non-uniform (Figure 1): bots and humans
gravitate to platforms holding weapons, armor and the mega-health, so those
regions show "exponential presence".  The :class:`ItemManager` tracks which
items are currently on the map and applies pickups to avatar state.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.game.avatar import MAX_ARMOR, AvatarState
from repro.game.gamemap import GameMap, ItemKind, ItemSpec
from repro.game.vector import Vec3

__all__ = ["ItemInstance", "PickupEvent", "ItemManager"]

PICKUP_RADIUS = 48.0


@dataclass
class ItemInstance:
    """One item slot on the map: its spec plus availability state."""

    spec: ItemSpec
    available: bool = True
    respawn_frame: int = 0  # frame at which it becomes available again

    def tick(self, frame: int) -> None:
        if not self.available and frame >= self.respawn_frame:
            self.available = True


@dataclass(frozen=True, slots=True)
class PickupEvent:
    """Recorded whenever an avatar collects an item (traced for replay)."""

    frame: int
    player_id: int
    item_name: str
    item_kind: str
    position: Vec3


class ItemManager:
    """Owns every item slot of a map and resolves pickups each frame."""

    def __init__(self, game_map: GameMap) -> None:
        self.game_map = game_map
        self.instances = [ItemInstance(spec) for spec in game_map.items]

    def tick(self, frame: int) -> None:
        """Respawn items whose timers elapsed."""
        for instance in self.instances:
            instance.tick(frame)

    def available_items(self) -> list[ItemInstance]:
        return [i for i in self.instances if i.available]

    def nearest_available(
        self, position: Vec3, kind: str | None = None
    ) -> ItemInstance | None:
        """The closest live item (optionally of one kind), or None."""
        candidates = [
            i
            for i in self.instances
            if i.available and (kind is None or i.spec.kind == kind)
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda i: i.spec.position.distance_to(position))

    def try_pickups(self, avatar: AvatarState, frame: int) -> list[PickupEvent]:
        """Collect every available item within reach of ``avatar``."""
        if not avatar.alive:
            return []
        events: list[PickupEvent] = []
        for instance in self.instances:
            if not instance.available:
                continue
            if instance.spec.position.distance_to(avatar.position) > PICKUP_RADIUS:
                continue
            self._apply(instance.spec, avatar)
            instance.available = False
            instance.respawn_frame = frame + instance.spec.respawn_frames
            events.append(
                PickupEvent(
                    frame=frame,
                    player_id=avatar.player_id,
                    item_name=instance.spec.name,
                    item_kind=instance.spec.kind,
                    position=instance.spec.position,
                )
            )
        return events

    @staticmethod
    def _apply(spec: ItemSpec, avatar: AvatarState) -> None:
        if spec.kind == ItemKind.HEALTH:
            # Mega-health style items can push past the normal cap.
            cap = 200 if spec.amount >= 100 else 100
            avatar.heal(spec.amount, cap=cap)
        elif spec.kind == ItemKind.ARMOR:
            avatar.armor = min(MAX_ARMOR, avatar.armor + spec.amount)
        elif spec.kind == ItemKind.AMMO:
            avatar.ammo += spec.amount * 5
        elif spec.kind == ItemKind.WEAPON:
            avatar.weapon = spec.name
            avatar.ammo += 20
        elif spec.kind == ItemKind.POWERUP:
            # Modelled as a large armor boost; enough for hotspot dynamics.
            avatar.armor = MAX_ARMOR
        else:  # pragma: no cover - ItemSpec validates kinds
            raise ValueError(f"unknown item kind {spec.kind!r}")
