"""The deathmatch simulator: generates game traces Quake-III-style.

This replaces the paper's enhanced Quake III as the trace source.  It runs
the standard discrete event-loop ("in each frame the states of the entities
are updated") at 50 ms frames, advancing bot-controlled avatars with real
physics, resolving shots/kills/pickups, and recording everything into a
:class:`~repro.game.trace.GameTrace`.

Everything is seeded: the same (seed, players, frames, map) produces an
identical trace, which the replay-based experiments rely on.
"""

from __future__ import annotations

import math
from random import Random
from dataclasses import dataclass

from repro.core.config import FRAME_SECONDS
from repro.game.avatar import AvatarState
from repro.game.bots import BotController, HumanlikeBot, WaypointBot
from repro.game.gamemap import GameMap, make_longest_yard
from repro.game.interest import InteractionRecency, LosCache
from repro.game.items import ItemManager
from repro.game.physics import Physics, PhysicsConfig
from repro.game.trace import GameTrace, KillEvent, ShotEvent, TraceEvent
from repro.game.vector import Vec3
from repro.game.weapons import WEAPONS, resolve_shot
from repro.obs.registry import MetricsRegistry, get_registry

__all__ = ["SimulationConfig", "DeathmatchSimulator", "generate_trace"]

RESPAWN_DELAY_FRAMES = 40  # 2 s at 50 ms frames


@dataclass(frozen=True, slots=True)
class SimulationConfig:
    """Parameters of one simulated deathmatch."""

    num_players: int = 48
    num_frames: int = 1200
    seed: int = 7
    npc_fraction: float = 0.0  # fraction of players driven by WaypointBot
    frame_seconds: float = FRAME_SECONDS

    def __post_init__(self) -> None:
        if self.num_players < 2:
            raise ValueError("a deathmatch needs at least two players")
        if self.num_frames <= 0:
            raise ValueError("num_frames must be positive")
        if not 0.0 <= self.npc_fraction <= 1.0:
            raise ValueError("npc_fraction must be in [0, 1]")


class DeathmatchSimulator:
    """Runs a full deathmatch and records a trace."""

    def __init__(
        self,
        config: SimulationConfig | None = None,
        game_map: GameMap | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.config = config or SimulationConfig()
        self.game_map = game_map or make_longest_yard()
        obs = registry if registry is not None else get_registry()
        self._hist_frame = obs.histogram("sim.frame_seconds")
        self._ctr_shots = obs.counter("sim.shots")
        self._ctr_kills = obs.counter("sim.kills")
        self.rng = Random(self.config.seed)
        self.physics = Physics(
            self.game_map, PhysicsConfig(frame_seconds=self.config.frame_seconds)
        )
        self.items = ItemManager(self.game_map)
        #: Per-frame symmetric LOS cache shared by every bot controller:
        #: bot A seeing bot B is the same geometric query as B seeing A, so
        #: each frame computes roughly half the naive LOS volume.
        self.los = LosCache(self.game_map)
        self.recency = InteractionRecency()
        self.avatars: dict[int, AvatarState] = {}
        self.controllers: dict[int, BotController] = {}
        self._last_shot_frame: dict[int, int] = {}
        self._spawn_players()

    # ---- setup ---------------------------------------------------------------

    def _spawn_players(self) -> None:
        num_npcs = int(round(self.config.num_players * self.config.npc_fraction))
        spawn_points = self.game_map.respawn_points
        for player_id in range(self.config.num_players):
            spawn = spawn_points[player_id % len(spawn_points)]
            jitter = Vec3(
                self.rng.uniform(-40.0, 40.0), self.rng.uniform(-40.0, 40.0), 0.0
            )
            avatar = AvatarState(player_id=player_id, position=spawn + jitter)
            avatar.yaw = self.rng.uniform(-math.pi, math.pi)
            self.avatars[player_id] = avatar
            controller_rng = Random(self.config.seed * 1_000_003 + player_id)
            if player_id < num_npcs:
                self.controllers[player_id] = WaypointBot(
                    player_id, self.game_map, controller_rng, los=self.los
                )
            else:
                self.controllers[player_id] = HumanlikeBot(
                    player_id, self.game_map, controller_rng, los=self.los
                )
            self._last_shot_frame[player_id] = -10_000

    # ---- main loop -------------------------------------------------------------

    def run(self) -> GameTrace:
        trace = GameTrace(
            map_name=self.game_map.name,
            num_players=self.config.num_players,
            frame_seconds=self.config.frame_seconds,
            seed=self.config.seed,
        )
        for frame in range(self.config.num_frames):
            with self._hist_frame.time():
                self._step_frame(frame, trace)
        return trace

    def _step_frame(self, frame: int, trace: GameTrace) -> None:
        self.los.begin_frame(frame)
        self.items.tick(frame)
        self._respawn_dead(frame)

        snapshots = {
            pid: avatar.snapshot(frame) for pid, avatar in self.avatars.items()
        }

        # 1. Controllers decide based on the *start-of-frame* world view.
        decisions = {}
        for player_id, controller in self.controllers.items():
            if not self.avatars[player_id].alive:
                continue
            decisions[player_id] = controller.decide(
                frame, snapshots[player_id], snapshots, self.items
            )

        # 2. Kinematics, batched through the flat-array physics kernel
        # (bit-identical to per-avatar Physics.step — tests enforce it).
        moving = list(decisions.items())
        batch = []
        for player_id, decision in moving:
            avatar = self.avatars[player_id]
            batch.append(
                (avatar.position, avatar.velocity, avatar.yaw, decision.intent)
            )
        for (player_id, _), result in zip(moving, self.physics.step_many(batch)):
            avatar = self.avatars[player_id]
            avatar.position = result.position
            avatar.velocity = result.velocity
            avatar.yaw = result.yaw
            avatar.on_ground = result.on_ground
            if result.fall_damage > 0:
                avatar.take_damage(result.fall_damage)
            if result.fell_in_void and avatar.alive:
                avatar.take_damage(10_000)
            if not avatar.alive:
                self._mark_death(frame, player_id, killer_id=None, trace=trace)

        # 3. Combat.
        for player_id, decision in decisions.items():
            if decision.shoot_at is None:
                continue
            self._resolve_shot(frame, player_id, decision.shoot_at, trace)

        # 4. Pickups.
        for avatar in self.avatars.values():
            for pickup in self.items.try_pickups(avatar, frame):
                trace.events.append(
                    TraceEvent(
                        frame=frame,
                        kind="pickup",
                        payload={
                            "player_id": pickup.player_id,
                            "item": pickup.item_name,
                            "item_kind": pickup.item_kind,
                        },
                    )
                )

        # 5. Record the end-of-frame state.
        trace.record_frame(
            {pid: avatar.snapshot(frame) for pid, avatar in self.avatars.items()}
        )

    # ---- combat ------------------------------------------------------------------

    def _resolve_shot(
        self, frame: int, shooter_id: int, target_id: int, trace: GameTrace
    ) -> None:
        shooter = self.avatars[shooter_id]
        target = self.avatars.get(target_id)
        if target is None or not shooter.alive or not target.alive:
            return
        spec = WEAPONS.get(shooter.weapon)
        if spec is None or shooter.ammo < spec.ammo_per_shot:
            return
        if frame - self._last_shot_frame[shooter_id] < spec.refire_frames:
            return
        self._last_shot_frame[shooter_id] = frame
        shooter.ammo -= spec.ammo_per_shot
        self._ctr_shots.inc()

        outcome = resolve_shot(
            self.game_map,
            spec,
            shooter.position,
            shooter.yaw,
            target.position,
            frame_seconds=self.config.frame_seconds,
            roll=self.rng.random(),
        )
        trace.shots.append(
            ShotEvent(
                frame=frame,
                shooter_id=shooter_id,
                target_id=target_id,
                weapon=spec.name,
                hit=outcome.hit,
                damage=outcome.damage,
                distance=outcome.distance,
                visible=outcome.visible,
            )
        )
        self.recency.record(shooter_id, target_id, frame)
        if outcome.hit:
            target.take_damage(outcome.damage)
            if not target.alive:
                shooter.kills += 1
                self._ctr_kills.inc()
                trace.kills.append(
                    KillEvent(
                        frame=frame,
                        killer_id=shooter_id,
                        victim_id=target_id,
                        weapon=spec.name,
                        distance=outcome.distance,
                    )
                )
                self._mark_death(frame, target_id, shooter_id, trace)

    def _mark_death(
        self, frame: int, player_id: int, killer_id: int | None, trace: GameTrace
    ) -> None:
        avatar = self.avatars[player_id]
        avatar.deaths += 1
        avatar.respawn_at_frame = frame + RESPAWN_DELAY_FRAMES
        trace.events.append(
            TraceEvent(
                frame=frame,
                kind="death",
                payload={"player_id": player_id, "killer_id": killer_id},
            )
        )

    def _respawn_dead(self, frame: int) -> None:
        for avatar in self.avatars.values():
            if avatar.alive:
                continue
            if avatar.respawn_at_frame is not None and frame >= avatar.respawn_at_frame:
                spawn = self.rng.choice(self.game_map.respawn_points)
                avatar.respawn(spawn, frame)
                avatar.yaw = self.rng.uniform(-math.pi, math.pi)


def generate_trace(
    num_players: int = 48,
    num_frames: int = 1200,
    seed: int = 7,
    npc_fraction: float = 0.0,
    game_map: GameMap | None = None,
    registry: MetricsRegistry | None = None,
) -> GameTrace:
    """Convenience wrapper: run one deathmatch and return its trace."""
    config = SimulationConfig(
        num_players=num_players,
        num_frames=num_frames,
        seed=seed,
        npc_fraction=npc_fraction,
    )
    return DeathmatchSimulator(config, game_map=game_map, registry=registry).run()
