"""Quake-III-class game substrate: world, physics, bots, traces.

This package replaces the paper's enhanced Quake III as the source of game
traces.  The public surface:

- :class:`~repro.game.gamemap.GameMap` and
  :func:`~repro.game.gamemap.make_longest_yard` — the q3dm17-like world;
- :class:`~repro.game.simulator.DeathmatchSimulator` /
  :func:`~repro.game.simulator.generate_trace` — trace generation;
- :class:`~repro.game.trace.GameTrace` — the recorded game;
- :func:`~repro.game.interest.compute_sets` — IS/VS/Others classification;
- :mod:`~repro.game.deadreckoning` — guidance prediction and the deviation
  metric verifiers use.
"""

from repro.game.avatar import AvatarSnapshot, AvatarState
from repro.game.gamemap import (
    Box,
    GameMap,
    ItemKind,
    ItemSpec,
    make_arena,
    make_corridors,
    make_longest_yard,
)
from repro.game.interest import (
    InteractionRecency,
    InterestConfig,
    InterestSets,
    LosCache,
    ObserverFrame,
    SetKind,
    compute_all_sets,
    compute_sets,
    compute_sets_reference,
)
from repro.game.spatial import SpatialGrid
from repro.game.physics import MoveIntent, Physics, PhysicsConfig
from repro.game.simulator import DeathmatchSimulator, SimulationConfig, generate_trace
from repro.game.trace import GameTrace, KillEvent, ShotEvent, TraceCursor
from repro.game.vector import Vec3

__all__ = [
    "AvatarSnapshot",
    "AvatarState",
    "Box",
    "DeathmatchSimulator",
    "GameMap",
    "GameTrace",
    "InteractionRecency",
    "InterestConfig",
    "InterestSets",
    "ItemKind",
    "ItemSpec",
    "KillEvent",
    "LosCache",
    "MoveIntent",
    "ObserverFrame",
    "Physics",
    "PhysicsConfig",
    "SetKind",
    "ShotEvent",
    "SimulationConfig",
    "SpatialGrid",
    "TraceCursor",
    "Vec3",
    "compute_all_sets",
    "compute_sets",
    "compute_sets_reference",
    "generate_trace",
    "make_arena",
    "make_corridors",
    "make_longest_yard",
]
