"""Movement physics envelope: the rules verifiers check updates against.

Watchmen verifies that "movements follow game physics (e.g., gravity,
limited velocity, angular speed, permitted position)".  This module is the
single source of truth for those rules — the simulator moves avatars with
it, and the verification layer re-uses it to rate position updates, so an
honest trace is physics-clean by construction and speed hacks are exactly
the updates that violate it.

Numbers follow Quake III: 320 u/s run speed, 800 u/s² gravity, 270 u/s jump
velocity, 50 ms frames.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.config import FRAME_SECONDS
from repro.game.gamemap import GameMap
from repro.game.vector import Vec3, clamp

__all__ = ["PhysicsConfig", "MoveIntent", "MoveResult", "Physics"]


@dataclass(frozen=True, slots=True)
class PhysicsConfig:
    """Tunable movement envelope (defaults match Quake III)."""

    frame_seconds: float = FRAME_SECONDS
    max_ground_speed: float = 320.0
    max_air_speed: float = 360.0
    gravity: float = 800.0
    jump_velocity: float = 270.0
    max_turn_rate: float = 12.0  # rad/s — human mouse flicks are fast
    max_fall_speed: float = 900.0  # terminal velocity (air drag clamp)
    step_height: float = 18.0
    fall_damage_speed: float = 580.0  # vertical impact speed causing damage
    fall_damage_per_speed: float = 0.05
    void_z: float = -400.0  # below this an avatar falls out of the world

    def __post_init__(self) -> None:
        if self.frame_seconds <= 0:
            raise ValueError("frame_seconds must be positive")
        if self.max_ground_speed <= 0 or self.max_air_speed <= 0:
            raise ValueError("speed caps must be positive")

    @property
    def max_frame_distance(self) -> float:
        """The farthest an honest avatar can travel in one frame (any mode)."""
        return max(self.max_ground_speed, self.max_air_speed) * self.frame_seconds


@dataclass(frozen=True, slots=True)
class MoveIntent:
    """What a player asks his avatar to do in one frame."""

    wish_direction: Vec3 = Vec3()  # desired horizontal direction (normalised)
    wish_speed: float = 0.0  # desired horizontal speed, clamped by physics
    jump: bool = False
    yaw: float = 0.0  # desired view yaw after the frame


@dataclass(frozen=True, slots=True)
class MoveResult:
    """Outcome of advancing an avatar's kinematics by one frame."""

    position: Vec3
    velocity: Vec3
    yaw: float
    on_ground: bool
    fall_damage: int
    fell_in_void: bool


class Physics:
    """Frame-step kinematics over a :class:`GameMap`."""

    def __init__(self, game_map: GameMap, config: PhysicsConfig | None = None) -> None:
        self.game_map = game_map
        self.config = config or PhysicsConfig()

    # ---- stepping ----------------------------------------------------------

    def step(
        self,
        position: Vec3,
        velocity: Vec3,
        yaw: float,
        intent: MoveIntent,
    ) -> MoveResult:
        """Advance one frame of kinematics, honouring every rule verifiers use."""
        cfg = self.config
        dt = cfg.frame_seconds

        floor = self.game_map.floor_height(position)
        on_ground = floor is not None and position.z <= floor + 0.5

        # Horizontal control: full control on ground, reduced in the air.
        speed_cap = cfg.max_ground_speed if on_ground else cfg.max_air_speed
        wish_speed = clamp(intent.wish_speed, 0.0, speed_cap)
        wish = intent.wish_direction.with_z(0.0).normalized() * wish_speed
        if on_ground:
            horizontal = wish
        else:
            current = velocity.with_z(0.0)
            horizontal = current.lerp(wish, 0.15)  # limited air control
            if horizontal.horizontal_length() > cfg.max_air_speed:
                horizontal = horizontal.normalized() * cfg.max_air_speed

        # Vertical: jumps and gravity.
        vz = velocity.z
        if on_ground:
            vz = cfg.jump_velocity if intent.jump else 0.0
        vz = max(vz - cfg.gravity * dt, -cfg.max_fall_speed)

        new_velocity = Vec3(horizontal.x, horizontal.y, vz)
        new_position = position + new_velocity * dt
        new_position = self.game_map.clamp_to_bounds(new_position)

        # Walls: moving laterally into a solid whose top is more than a
        # step above us blocks the horizontal motion (no climbing pillars).
        target_floor = self.game_map.floor_height(new_position)
        if (
            target_floor is not None
            and target_floor > position.z + cfg.step_height
            and new_position.z < target_floor
        ):
            new_velocity = Vec3(0.0, 0.0, vz)
            new_position = Vec3(position.x, position.y, position.z + vz * dt)
            new_position = self.game_map.clamp_to_bounds(new_position)

        # Land on floors (with step-up tolerance).
        fall_damage = 0
        landed_floor = self.game_map.floor_height(new_position)
        if landed_floor is not None and new_position.z <= landed_floor:
            impact = max(0.0, -new_velocity.z)
            if impact > cfg.fall_damage_speed:
                fall_damage = int(
                    (impact - cfg.fall_damage_speed) * cfg.fall_damage_per_speed
                )
            new_position = new_position.with_z(landed_floor)
            new_velocity = new_velocity.with_z(0.0)
            grounded = True
        else:
            grounded = False

        # Turn-rate limit.
        new_yaw = self._turn_towards(yaw, intent.yaw, cfg.max_turn_rate * dt)

        fell = new_position.z < cfg.void_z
        return MoveResult(
            position=new_position,
            velocity=new_velocity,
            yaw=new_yaw,
            on_ground=grounded,
            fall_damage=fall_damage,
            fell_in_void=fell,
        )

    def step_many(
        self,
        batch: "list[tuple[Vec3, Vec3, float, MoveIntent]]",
    ) -> list[MoveResult]:
        """Advance one frame for a whole roster — the flat-array kernel.

        Bit-identical to calling :meth:`step` per entry (property tests
        enforce it): every float expression below mirrors the scalar path
        operation-for-operation, including apparent no-ops like
        ``+ 0.0 * 0.0`` (the ``z`` term of a dot product over a vector
        whose ``z`` is exactly ``0.0``).  The speedup comes from hoisting
        config/map lookups out of the per-avatar loop, querying floors via
        :meth:`GameMap.floor_height_xy`, and doing the vector algebra on
        plain floats instead of intermediate ``Vec3`` instances.
        """
        cfg = self.config
        dt = cfg.frame_seconds
        game_map = self.game_map
        floor_height_xy = game_map.floor_height_xy
        bounds_min = game_map.bounds_min
        bounds_max = game_map.bounds_max
        bmin_x, bmin_y, bmin_z = bounds_min.x, bounds_min.y, bounds_min.z
        bmax_x, bmax_y, bmax_z = bounds_max.x, bounds_max.y, bounds_max.z
        max_ground_speed = cfg.max_ground_speed
        max_air_speed = cfg.max_air_speed
        gravity_dt = cfg.gravity * dt
        neg_max_fall = -cfg.max_fall_speed
        jump_velocity = cfg.jump_velocity
        step_height = cfg.step_height
        fall_damage_speed = cfg.fall_damage_speed
        fall_damage_per_speed = cfg.fall_damage_per_speed
        void_z = cfg.void_z
        max_turn = cfg.max_turn_rate * dt
        neg_max_turn = -max_turn
        pi = math.pi
        two_pi = 2.0 * math.pi
        sqrt = math.sqrt
        hypot = math.hypot
        results: list[MoveResult] = []
        append = results.append

        for position, velocity, yaw, intent in batch:
            px, py, pz = position.x, position.y, position.z
            floor = floor_height_xy(px, py)
            on_ground = floor is not None and pz <= floor + 0.5

            # Horizontal control (clamp / with_z(0) / normalized, inlined).
            speed_cap = max_ground_speed if on_ground else max_air_speed
            wish_speed = intent.wish_speed
            wish_speed = (
                0.0
                if wish_speed < 0.0
                else speed_cap if wish_speed > speed_cap else wish_speed
            )
            direction = intent.wish_direction
            wx, wy = direction.x, direction.y
            norm = sqrt(wx * wx + wy * wy + 0.0 * 0.0)
            if norm < 1e-12:
                wish_x = 0.0 * wish_speed
                wish_y = 0.0 * wish_speed
            else:
                wish_x = (wx / norm) * wish_speed
                wish_y = (wy / norm) * wish_speed
            if on_ground:
                hx, hy = wish_x, wish_y
            else:
                cx, cy = velocity.x, velocity.y
                hx = cx + (wish_x - cx) * 0.15
                hy = cy + (wish_y - cy) * 0.15
                if hypot(hx, hy) > max_air_speed:
                    hnorm = sqrt(hx * hx + hy * hy + 0.0 * 0.0)
                    if hnorm < 1e-12:
                        hx = 0.0 * max_air_speed
                        hy = 0.0 * max_air_speed
                    else:
                        hx = (hx / hnorm) * max_air_speed
                        hy = (hy / hnorm) * max_air_speed

            # Vertical: jumps and gravity.
            vz = velocity.z
            if on_ground:
                vz = jump_velocity if intent.jump else 0.0
            vz = max(vz - gravity_dt, neg_max_fall)

            nx = min(max(px + hx * dt, bmin_x), bmax_x)
            ny = min(max(py + hy * dt, bmin_y), bmax_y)
            nz = min(max(pz + vz * dt, bmin_z), bmax_z)

            # Walls block lateral motion into a too-tall solid.
            target_floor = floor_height_xy(nx, ny)
            if (
                target_floor is not None
                and target_floor > pz + step_height
                and nz < target_floor
            ):
                hx = 0.0
                hy = 0.0
                nx = min(max(px, bmin_x), bmax_x)
                ny = min(max(py, bmin_y), bmax_y)
                nz = min(max(pz + vz * dt, bmin_z), bmax_z)
                landed_floor = floor_height_xy(nx, ny)
            else:
                # floor_height is pure: the scalar path's second query on
                # the unchanged position would return the same value.
                landed_floor = target_floor

            # Land on floors (with step-up tolerance).
            fall_damage = 0
            if landed_floor is not None and nz <= landed_floor:
                impact = max(0.0, -vz)
                if impact > fall_damage_speed:
                    fall_damage = int(
                        (impact - fall_damage_speed) * fall_damage_per_speed
                    )
                nz = landed_floor
                out_vz = 0.0
                grounded = True
            else:
                out_vz = vz
                grounded = False

            # Turn-rate limit (_turn_towards, inlined).
            delta = (intent.yaw - yaw + pi) % two_pi - pi
            delta = (
                neg_max_turn
                if delta < neg_max_turn
                else max_turn if delta > max_turn else delta
            )
            new_yaw = (yaw + delta + pi) % two_pi - pi

            append(
                MoveResult(
                    position=Vec3(nx, ny, nz),
                    velocity=Vec3(hx, hy, out_vz),
                    yaw=new_yaw,
                    on_ground=grounded,
                    fall_damage=fall_damage,
                    fell_in_void=nz < void_z,
                )
            )
        return results

    @staticmethod
    def _turn_towards(current: float, target: float, max_delta: float) -> float:
        """Rotate ``current`` towards ``target`` by at most ``max_delta`` rad."""
        import math

        delta = (target - current + math.pi) % (2.0 * math.pi) - math.pi
        delta = clamp(delta, -max_delta, max_delta)
        result = current + delta
        return (result + math.pi) % (2.0 * math.pi) - math.pi

    # ---- legality checks (shared with repro.core.verification) -------------

    def max_horizontal_travel(self, frames: int) -> float:
        """Maximum legal horizontal displacement across ``frames`` frames."""
        if frames < 0:
            raise ValueError("frames must be non-negative")
        return self.config.max_frame_distance * frames

    def max_descent(self, frames: int) -> float:
        """Maximum legal drop: terminal velocity the whole time."""
        if frames < 0:
            raise ValueError("frames must be non-negative")
        return self.config.max_fall_speed * self.config.frame_seconds * frames

    def max_ascent(self, frames: int) -> float:
        """Maximum legal rise: repeated jumps (plus step-ups)."""
        if frames < 0:
            raise ValueError("frames must be non-negative")
        dt = self.config.frame_seconds
        return (self.config.jump_velocity * dt + self.config.step_height) * frames

    def max_travel(self, frames: int) -> float:
        """Maximum legal total displacement across ``frames`` frames."""
        horizontal = self.max_horizontal_travel(frames)
        vertical = max(self.max_descent(frames), self.max_ascent(frames))
        return (horizontal * horizontal + vertical * vertical) ** 0.5

    def displacement_excess(self, start: Vec3, end: Vec3, frames: int) -> float:
        """How far beyond the physics envelope a displacement is (in units).

        Checked component-wise — "gravity, limited velocity" are separate
        rules — so a 2× horizontal speed hack cannot hide inside the
        free-fall vertical allowance.  Returns 0 for legal movement.
        """
        if frames <= 0:
            return start.distance_to(end)
        offset = end - start
        horizontal_excess = max(
            0.0, offset.horizontal_length() - self.max_horizontal_travel(frames)
        )
        if offset.z >= 0:
            vertical_excess = max(0.0, offset.z - self.max_ascent(frames))
        else:
            vertical_excess = max(0.0, -offset.z - self.max_descent(frames))
        return max(horizontal_excess, vertical_excess)

    def displacement_is_legal(
        self, start: Vec3, end: Vec3, frames: int, tolerance: float = 1.05
    ) -> bool:
        """Could an honest avatar have moved ``start``→``end`` in ``frames``?

        ``tolerance`` absorbs wire quantization and frame phase (honest
        updates must never be flagged; this is the FP≤5 % side of Fig. 6).
        """
        if frames <= 0:
            return start.distance_to(end) < 1.0
        allowance = self.max_horizontal_travel(frames) * (tolerance - 1.0)
        return self.displacement_excess(start, end, frames) <= allowance

    def speed_of(self, start: Vec3, end: Vec3, frames: int) -> float:
        """Implied average speed (u/s) for the displacement."""
        if frames <= 0:
            return 0.0
        return start.distance_to(end) / (frames * self.config.frame_seconds)
