"""Game-world geometry: maps, occluders, items and spawn points.

The paper evaluates on Quake III's ``q3dm17`` ("The Longest Yard") — a
deathmatch map made of floating platforms connected by jump pads, with
weapons / armor / health concentrated on a few platforms.  That item and
platform layout is what produces the strongly non-uniform presence heatmap
of Figure 1 and the attention dynamics the subscription model relies on.

We model maps in 2.5-D: the world is a box; solid geometry is a set of
axis-aligned boxes (``Box``) that act both as *floors* (avatars stand on
their top faces) and *occluders* (they block line of sight).  This is
enough to reproduce occlusion-culled vision sets ("avatars behind a wall do
not appear in the vision set"), the potentially-visible-set baseline, and
hotspot formation around items.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.game.spatial import SpatialGrid
from repro.game.vector import Vec3

__all__ = [
    "Box",
    "ItemSpec",
    "ItemKind",
    "GameMap",
    "make_longest_yard",
    "make_arena",
    "make_corridors",
]


class ItemKind:
    """Item categories placed on maps (mirrors the Figure 1 legend)."""

    HEALTH = "health"
    AMMO = "ammo"
    WEAPON = "weapon"
    ARMOR = "armor"
    POWERUP = "powerup"

    ALL = (HEALTH, AMMO, WEAPON, ARMOR, POWERUP)


@dataclass(frozen=True, slots=True)
class Box:
    """An axis-aligned solid box: floor for avatars, occluder for sight."""

    min_corner: Vec3
    max_corner: Vec3
    name: str = ""

    def __post_init__(self) -> None:
        if (
            self.min_corner.x > self.max_corner.x
            or self.min_corner.y > self.max_corner.y
            or self.min_corner.z > self.max_corner.z
        ):
            raise ValueError(f"degenerate box {self.name!r}")

    @property
    def top(self) -> float:
        return self.max_corner.z

    @property
    def center(self) -> Vec3:
        return (self.min_corner + self.max_corner) * 0.5

    def contains_xy(self, point: Vec3, margin: float = 0.0) -> bool:
        """Is the XY projection of ``point`` over this box (with margin)?"""
        return (
            self.min_corner.x - margin <= point.x <= self.max_corner.x + margin
            and self.min_corner.y - margin <= point.y <= self.max_corner.y + margin
        )

    def contains(self, point: Vec3) -> bool:
        return (
            self.min_corner.x <= point.x <= self.max_corner.x
            and self.min_corner.y <= point.y <= self.max_corner.y
            and self.min_corner.z <= point.z <= self.max_corner.z
        )

    def intersects_segment(self, start: Vec3, end: Vec3) -> bool:
        """Slab test: does the segment [start, end] pass through the box?

        Used for occlusion: a sight line is blocked if it crosses any solid
        box.  Endpoints that merely touch the surface do not count as a
        crossing (an avatar standing *on* a platform can still be seen).
        """
        direction = end - start
        t_enter, t_exit = 0.0, 1.0
        surface_epsilon = 1e-6  # rays sliding exactly on a face don't block
        for axis in range(3):
            d = (direction.x, direction.y, direction.z)[axis]
            s = (start.x, start.y, start.z)[axis]
            lo = (self.min_corner.x, self.min_corner.y, self.min_corner.z)[axis]
            hi = (self.max_corner.x, self.max_corner.y, self.max_corner.z)[axis]
            lo += surface_epsilon
            hi -= surface_epsilon
            if abs(d) < 1e-12:
                if s < lo or s > hi:
                    return False
                continue
            t1 = (lo - s) / d
            t2 = (hi - s) / d
            if t1 > t2:
                t1, t2 = t2, t1
            t_enter = max(t_enter, t1)
            t_exit = min(t_exit, t2)
            if t_enter > t_exit:
                return False
        # Require a real interior crossing, not a surface graze.
        return (t_exit - t_enter) > 1e-9


@dataclass(frozen=True, slots=True)
class ItemSpec:
    """A pickup placed at a fixed map location, respawning after pickup."""

    kind: str
    position: Vec3
    respawn_frames: int = 400  # 20 s at 50 ms frames, Quake-like
    amount: int = 25
    name: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ItemKind.ALL:
            raise ValueError(f"unknown item kind {self.kind!r}")
        if self.respawn_frames <= 0:
            raise ValueError("respawn_frames must be positive")


@dataclass
class GameMap:
    """A deathmatch map: bounds, solid geometry, items and respawn points."""

    name: str
    bounds_min: Vec3
    bounds_max: Vec3
    solids: list[Box] = field(default_factory=list)
    items: list[ItemSpec] = field(default_factory=list)
    respawn_points: list[Vec3] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.respawn_points:
            raise ValueError("a map needs at least one respawn point")
        for point in self.respawn_points:
            if not self.in_bounds(point):
                raise ValueError(f"respawn point {point} outside map bounds")
        # Lazy spatial index over `solids` (see docs/PERFORMANCE.md).  The
        # index is rebuilt automatically when the solids *list object* or
        # its length changes; replacing an element in place requires an
        # explicit `invalidate_spatial_index()` call.
        self._index: SpatialGrid | None = None
        self._index_source: list[Box] | None = None
        # Perf accounting for the LOS fast path (plain ints: no observable
        # behaviour, negligible overhead, read by bench_interest).
        self.los_queries: int = 0
        self.los_boxes_tested: int = 0

    # ---- spatial index -----------------------------------------------------

    @property
    def spatial_index(self) -> SpatialGrid:
        """The (lazily built) uniform grid over ``solids``."""
        index = self._index
        if (
            index is None
            or self._index_source is not self.solids
            or index.num_boxes != len(self.solids)
        ):
            index = SpatialGrid(self.solids)
            self._index = index
            self._index_source = self.solids
        return index

    def invalidate_spatial_index(self) -> None:
        """Drop the cached grid (call after mutating a Box in place)."""
        self._index = None
        self._index_source = None

    # ---- queries ----------------------------------------------------------

    def in_bounds(self, point: Vec3) -> bool:
        return (
            self.bounds_min.x <= point.x <= self.bounds_max.x
            and self.bounds_min.y <= point.y <= self.bounds_max.y
            and self.bounds_min.z <= point.z <= self.bounds_max.z
        )

    def clamp_to_bounds(self, point: Vec3) -> Vec3:
        return Vec3(
            min(max(point.x, self.bounds_min.x), self.bounds_max.x),
            min(max(point.y, self.bounds_min.y), self.bounds_max.y),
            min(max(point.z, self.bounds_min.z), self.bounds_max.z),
        )

    def floor_height(self, point: Vec3) -> float | None:
        """Top of the highest solid under ``point``'s XY, or None (void).

        Fast path: only boxes registered in the point's grid cell are
        tested.  Bit-identical to :meth:`floor_height_naive` (the grid is
        conservative and the per-box test is unchanged).
        """
        best: float | None = None
        boxes = self.solids
        for index in self.spatial_index.point_candidates(point.x, point.y):
            box = boxes[index]
            if box.contains_xy(point) and (best is None or box.top > best):
                best = box.top
        return best

    def floor_height_naive(self, point: Vec3) -> float | None:
        """Reference linear scan over all solids (exactness-gate baseline)."""
        best: float | None = None
        for box in self.solids:
            if box.contains_xy(point) and (best is None or box.top > best):
                best = box.top
        return best

    def floor_height_xy(self, x: float, y: float) -> float | None:
        """:meth:`floor_height` for a bare XY coordinate.

        The batched physics kernel queries floors for whole rosters per
        frame; taking plain floats avoids a throwaway ``Vec3`` per query.
        Reads the grid's flat ``box_bounds`` instead of chasing
        ``Box.min_corner`` attribute chains; the containment predicate and
        the top-face maximum mirror :meth:`floor_height` exactly, so the
        two are bit-identical (tests enforce it).
        """
        best: float | None = None
        index = self.spatial_index
        bounds = index.box_bounds
        for candidate in index.point_candidates(x, y):
            min_x, min_y, _, max_x, max_y, max_z = bounds[candidate]
            if (
                min_x <= x <= max_x
                and min_y <= y <= max_y
                and (best is None or max_z > best)
            ):
                best = max_z
        return best

    def line_of_sight(self, eye: Vec3, target: Vec3) -> bool:
        """True when no solid blocks the segment between the two points.

        This is the occlusion test behind the vision set: avatars "in a
        player's vision range, but behind a wall do not appear in his
        vision set".

        Fast path: endpoints are put in canonical order (which makes the
        result exactly symmetric, so per-frame caches can share LOS(a,b)
        with LOS(b,a)), then only the boxes whose grid cells the segment
        touches are slab-tested.  Bit-identical to
        :meth:`line_of_sight_naive`.
        """
        ex, ey, ez = eye.x, eye.y, eye.z
        tx, ty, tz = target.x, target.y, target.z
        if (ex, ey, ez) > (tx, ty, tz):
            ex, ey, ez, tx, ty, tz = tx, ty, tz, ex, ey, ez
        index = self.spatial_index
        candidates = index.segment_candidates(ex, ey, tx, ty)
        self.los_queries += 1
        self.los_boxes_tested += len(candidates)
        if not candidates:
            return True
        # Inlined containment + slab test over the grid's flat float bounds.
        # Arithmetic mirrors Box.contains / Box.intersects_segment
        # operation-for-operation (tests enforce bit-identical results);
        # inlining avoids per-box tuple construction and Vec3 attribute
        # chains on a path run O(players²) times per frame.
        dx = tx - ex
        dy = ty - ey
        dz = tz - ez
        bounds = index.box_bounds
        for candidate in candidates:
            min_x, min_y, min_z, max_x, max_y, max_z = bounds[candidate]
            if min_x <= ex <= max_x and min_y <= ey <= max_y and min_z <= ez <= max_z:
                continue  # box contains the eye: it cannot occlude
            if min_x <= tx <= max_x and min_y <= ty <= max_y and min_z <= tz <= max_z:
                continue  # box contains the target
            t_enter = 0.0
            t_exit = 1.0
            # -- x slab (surface_epsilon = 1e-6, as in intersects_segment)
            lo = min_x + 1e-6
            hi = max_x - 1e-6
            if abs(dx) < 1e-12:
                if ex < lo or ex > hi:
                    continue
            else:
                t1 = (lo - ex) / dx
                t2 = (hi - ex) / dx
                if t1 > t2:
                    t1, t2 = t2, t1
                if t1 > t_enter:
                    t_enter = t1
                if t2 < t_exit:
                    t_exit = t2
                if t_enter > t_exit:
                    continue
            # -- y slab
            lo = min_y + 1e-6
            hi = max_y - 1e-6
            if abs(dy) < 1e-12:
                if ey < lo or ey > hi:
                    continue
            else:
                t1 = (lo - ey) / dy
                t2 = (hi - ey) / dy
                if t1 > t2:
                    t1, t2 = t2, t1
                if t1 > t_enter:
                    t_enter = t1
                if t2 < t_exit:
                    t_exit = t2
                if t_enter > t_exit:
                    continue
            # -- z slab
            lo = min_z + 1e-6
            hi = max_z - 1e-6
            if abs(dz) < 1e-12:
                if ez < lo or ez > hi:
                    continue
            else:
                t1 = (lo - ez) / dz
                t2 = (hi - ez) / dz
                if t1 > t2:
                    t1, t2 = t2, t1
                if t1 > t_enter:
                    t_enter = t1
                if t2 < t_exit:
                    t_exit = t2
                if t_enter > t_exit:
                    continue
            # Require a real interior crossing, not a surface graze.
            if (t_exit - t_enter) > 1e-9:
                return False
        return True

    def line_of_sight_naive(self, eye: Vec3, target: Vec3) -> bool:
        """Reference linear scan over all solids (exactness-gate baseline).

        Uses the same canonical endpoint order as the fast path so that
        both are symmetric and comparable bit-for-bit.
        """
        if (eye.x, eye.y, eye.z) > (target.x, target.y, target.z):
            eye, target = target, eye
        self.los_queries += 1
        self.los_boxes_tested += len(self.solids)
        for box in self.solids:
            if box.contains(eye) or box.contains(target):
                continue
            if box.intersects_segment(eye, target):
                return False
        return True

    def nearest_respawn(self, point: Vec3) -> Vec3:
        return min(self.respawn_points, key=lambda p: p.distance_to(point))

    def item_positions(self, kind: str | None = None) -> list[Vec3]:
        return [i.position for i in self.items if kind is None or i.kind == kind]


# --------------------------------------------------------------------------
# Built-in maps
# --------------------------------------------------------------------------

_EYE_HEIGHT = 48.0  # Quake-ish view height above the standing surface


def _platform(cx: float, cy: float, half: float, top: float, name: str) -> Box:
    """A square platform of half-width ``half`` whose top face is at ``top``."""
    return Box(
        Vec3(cx - half, cy - half, top - 64.0),
        Vec3(cx + half, cy + half, top),
        name=name,
    )


def make_longest_yard(seed_layout: int = 0) -> GameMap:
    """A q3dm17-like map: floating platforms, central rail platform, items.

    The layout follows the structure of "The Longest Yard": a large central
    platform holding the railgun and mega-health (the Figure 1 hotspot), a
    ring of satellite platforms with weapons/armor/ammo, and elevated sniper
    ledges.  Platforms are separated by void; bots travel between them along
    waypoint hops (jump pads in the original).

    ``seed_layout`` perturbs nothing today; it is accepted so that future
    map variants can be derived deterministically.
    """
    del seed_layout  # single canonical layout, parameter reserved
    solids: list[Box] = []
    items: list[ItemSpec] = []
    respawns: list[Vec3] = []

    # Central platform — the famous rail/mega hotspot.
    center = _platform(0.0, 0.0, 420.0, 0.0, "central")
    solids.append(center)
    items.append(ItemSpec(ItemKind.WEAPON, Vec3(0.0, 0.0, 0.0), 200, 1, "railgun"))
    items.append(ItemSpec(ItemKind.HEALTH, Vec3(140.0, 0.0, 0.0), 700, 100, "mega"))
    items.append(ItemSpec(ItemKind.AMMO, Vec3(-160.0, 120.0, 0.0), 300, 10, "slugs"))

    # Ring of six satellite platforms.
    ring_radius = 1100.0
    satellite_items = [
        (ItemKind.ARMOR, 500, 50, "red-armor"),
        (ItemKind.WEAPON, 250, 1, "rocket-launcher"),
        (ItemKind.HEALTH, 300, 25, "health-25"),
        (ItemKind.AMMO, 250, 10, "rockets"),
        (ItemKind.WEAPON, 250, 1, "lightning-gun"),
        (ItemKind.ARMOR, 400, 25, "yellow-armor"),
    ]
    for index, (kind, respawn, amount, name) in enumerate(satellite_items):
        angle = 2.0 * math.pi * index / len(satellite_items)
        cx = ring_radius * math.cos(angle)
        cy = ring_radius * math.sin(angle)
        solids.append(_platform(cx, cy, 240.0, 64.0, f"satellite-{index}"))
        items.append(ItemSpec(kind, Vec3(cx, cy, 64.0), respawn, amount, name))
        respawns.append(Vec3(cx + 80.0, cy + 80.0, 64.0))

    # Two elevated sniper ledges with powerups, plus occluding pillars on the
    # central platform (they create the behind-a-wall cases for the VS test).
    for sign, tag in ((1.0, "north"), (-1.0, "south")):
        lx, ly = 0.0, sign * 1700.0
        solids.append(_platform(lx, ly, 180.0, 256.0, f"ledge-{tag}"))
        items.append(
            ItemSpec(ItemKind.POWERUP, Vec3(lx, ly, 256.0), 900, 1, f"quad-{tag}")
        )
        respawns.append(Vec3(lx - 60.0, ly - sign * 60.0, 256.0))
    for sign in (1.0, -1.0):
        solids.append(
            Box(
                Vec3(sign * 260.0 - 40.0, -40.0, 0.0),
                Vec3(sign * 260.0 + 40.0, 40.0, 160.0),
                name=f"pillar-{'east' if sign > 0 else 'west'}",
            )
        )

    respawns.append(Vec3(0.0, 320.0, 0.0))
    respawns.append(Vec3(0.0, -320.0, 0.0))

    return GameMap(
        name="longest-yard",
        bounds_min=Vec3(-2200.0, -2200.0, -512.0),
        bounds_max=Vec3(2200.0, 2200.0, 768.0),
        solids=solids,
        items=items,
        respawn_points=respawns,
    )


def make_arena(side: float = 2000.0, pillars: int = 4) -> GameMap:
    """A simple flat arena with occluding pillars — a fast unit-test map."""
    if side <= 200.0:
        raise ValueError("arena side too small")
    half = side / 2.0
    solids = [
        Box(Vec3(-half, -half, -64.0), Vec3(half, half, 0.0), name="floor"),
    ]
    items: list[ItemSpec] = []
    respawns: list[Vec3] = []
    for index in range(max(0, pillars)):
        angle = 2.0 * math.pi * index / max(1, pillars)
        cx, cy = half * 0.45 * math.cos(angle), half * 0.45 * math.sin(angle)
        solids.append(
            Box(
                Vec3(cx - 60.0, cy - 60.0, 0.0),
                Vec3(cx + 60.0, cy + 60.0, 200.0),
                name=f"pillar-{index}",
            )
        )
        items.append(
            ItemSpec(
                ItemKind.HEALTH if index % 2 == 0 else ItemKind.AMMO,
                Vec3(cx + 120.0, cy, 0.0),
                300,
                25,
                f"item-{index}",
            )
        )
    for corner_x in (-0.8, 0.8):
        for corner_y in (-0.8, 0.8):
            respawns.append(Vec3(half * corner_x, half * corner_y, 0.0))
    items.append(ItemSpec(ItemKind.WEAPON, Vec3(0.0, 0.0, 0.0), 250, 1, "center-gun"))
    return GameMap(
        name="arena",
        bounds_min=Vec3(-half, -half, -128.0),
        bounds_max=Vec3(half, half, 512.0),
        solids=solids,
        items=items,
        respawn_points=respawns,
    )


def make_corridors(lanes: int = 3, lane_width: float = 300.0,
                   length: float = 3200.0) -> GameMap:
    """A corridor map: long parallel lanes with doorways — heavy occlusion.

    The opposite visibility regime from the open longest-yard: sight lines
    are short and interrupted, so vision sets are small, interest sets are
    stable ("this value can be slightly different for different maps"),
    and most players sit in each other's Others set most of the time.
    """
    if lanes < 2:
        raise ValueError("need at least two lanes")
    if lane_width < 150.0 or length < 600.0:
        raise ValueError("corridor dimensions too small")
    half_len = length / 2.0
    total_width = lanes * lane_width
    half_wid = total_width / 2.0
    wall_thickness = 24.0
    wall_height = 200.0

    solids: list[Box] = [
        Box(
            Vec3(-half_len, -half_wid, -64.0),
            Vec3(half_len, half_wid, 0.0),
            name="floor",
        )
    ]
    items: list[ItemSpec] = []
    respawns: list[Vec3] = []

    # Inner walls between lanes, pierced by three doorways each.
    door_width = 140.0
    door_xs = (-half_len * 0.5, 0.0, half_len * 0.5)
    for wall_index in range(1, lanes):
        wall_y = -half_wid + wall_index * lane_width
        segment_edges = [-half_len]
        for door_x in door_xs:
            segment_edges.extend([door_x - door_width / 2, door_x + door_width / 2])
        segment_edges.append(half_len)
        for seg in range(0, len(segment_edges) - 1, 2):
            x0, x1 = segment_edges[seg], segment_edges[seg + 1]
            if x1 - x0 < 1.0:
                continue
            solids.append(
                Box(
                    Vec3(x0, wall_y - wall_thickness / 2, 0.0),
                    Vec3(x1, wall_y + wall_thickness / 2, wall_height),
                    name=f"wall-{wall_index}-{seg // 2}",
                )
            )

    # Items: weapons at lane centres, health/ammo at the ends.
    lane_kinds = [ItemKind.WEAPON, ItemKind.ARMOR, ItemKind.POWERUP]
    lane_names = ["railgun", "red-armor", "quad-corridor"]
    for lane in range(lanes):
        lane_y = -half_wid + (lane + 0.5) * lane_width
        kind = lane_kinds[lane % len(lane_kinds)]
        name = lane_names[lane % len(lane_names)]
        items.append(
            ItemSpec(kind, Vec3(0.0, lane_y, 0.0), 300, 50, f"{name}-{lane}")
        )
        items.append(
            ItemSpec(
                ItemKind.HEALTH,
                Vec3(-half_len + 160.0, lane_y, 0.0),
                300,
                25,
                f"health-{lane}",
            )
        )
        items.append(
            ItemSpec(
                ItemKind.AMMO,
                Vec3(half_len - 160.0, lane_y, 0.0),
                250,
                10,
                f"ammo-{lane}",
            )
        )
        respawns.append(Vec3(-half_len + 240.0, lane_y, 0.0))
        respawns.append(Vec3(half_len - 240.0, lane_y, 0.0))

    return GameMap(
        name="corridors",
        bounds_min=Vec3(-half_len, -half_wid, -128.0),
        bounds_max=Vec3(half_len, half_wid, 512.0),
        solids=solids,
        items=items,
        respawn_points=respawns,
    )


def eye_position(feet: Vec3) -> Vec3:
    """The camera position for an avatar standing at ``feet``."""
    return feet.with_z(feet.z + _EYE_HEIGHT)
