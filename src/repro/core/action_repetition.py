"""Action-repetition verification: re-simulate the claimed move.

Section V-A: "For efficiency reasons, we perform sanity checks to detect
cheating.  However, action repetition checks (e.g., tamper-resistant
logging mechanisms) that would provide more accuracy but incur higher
costs are also possible."

This module is that higher-accuracy option: instead of bounding a
displacement with the physics *envelope*, the verifier **replays** the
frame — it searches over the space of legal player intents (movement
directions, speeds, jumping) and runs each through the exact same
:class:`~repro.game.physics.Physics` stepper the game uses.  The
deviation is the distance between the claimed end position and the
closest legally reachable one, so even sub-envelope cheats (e.g. a 1.2×
speed multiplier that hides inside the sanity check's tolerance) are
exposed.

Cost: ~``directions × speeds × jump`` physics steps per verified frame —
an order of magnitude above the sanity check, exactly the trade-off the
paper describes.  It is therefore off by default and enabled per-node via
``WatchmenConfig(action_repetition=True)``.
"""

from __future__ import annotations

import math

from repro.core.verification import CheatRating, CheckKind, rating_from_deviation
from repro.game.avatar import AvatarSnapshot
from repro.game.physics import MoveIntent, Physics
from repro.game.vector import Vec3

__all__ = ["ActionRepetitionVerifier"]


class ActionRepetitionVerifier:
    """Replays one-frame transitions through the real physics stepper."""

    def __init__(
        self,
        physics: Physics,
        directions: int = 12,
        tolerance: float = 2.5,
    ) -> None:
        if directions < 4:
            raise ValueError("need at least 4 candidate directions")
        self.physics = physics
        self.tolerance = tolerance
        self._angles = [
            2.0 * math.pi * index / directions for index in range(directions)
        ]
        self._last_seen: dict[int, AvatarSnapshot] = {}
        self.replays_run = 0

    def observe(
        self,
        verifier_id: int,
        snapshot: AvatarSnapshot,
        confidence: float,
    ) -> CheatRating | None:
        """Feed a per-frame update stream; replays consecutive frames."""
        previous = self._last_seen.get(snapshot.player_id)
        self._last_seen[snapshot.player_id] = snapshot
        if previous is None or snapshot.frame != previous.frame + 1:
            return None  # replay needs exactly consecutive frames
        if not previous.alive or not snapshot.alive:
            return None
        deviation = self.reachability_gap(previous, snapshot)
        rating = rating_from_deviation(deviation, self.tolerance)
        return CheatRating(
            verifier_id=verifier_id,
            subject_id=snapshot.player_id,
            frame=snapshot.frame,
            check=CheckKind.POSITION,
            rating=rating,
            confidence=confidence,
            deviation=deviation,
            detail=(
                f"action replay: closest legal move ends {deviation:.1f}u "
                f"from the claimed position"
            ),
        )

    def reachability_gap(
        self, previous: AvatarSnapshot, claimed: AvatarSnapshot
    ) -> float:
        """Distance from the claimed end to the closest reachable point."""
        best = math.inf
        offset = (claimed.position - previous.position).with_z(0.0)
        cfg = self.physics.config
        candidates: list[tuple[float, float]] = []  # (angle, speed)
        if offset.length() > 1e-6:
            # The exact intent that would produce the claimed displacement
            # on the ground — clamped by the stepper, so a speed multiplier
            # leaves precisely its excess as the gap.
            exact_speed = min(
                cfg.max_air_speed,
                offset.length() / cfg.frame_seconds,
            )
            candidates.append((offset.yaw(), exact_speed))
            candidates.append((offset.yaw(), cfg.max_ground_speed))
        for angle in self._angles:
            for speed in (0.0, cfg.max_ground_speed * 0.5, cfg.max_ground_speed):
                candidates.append((angle, speed))
        for angle, speed in candidates:
            direction = Vec3.from_yaw(angle)
            for jump in (False, True):
                intent = MoveIntent(
                    wish_direction=direction,
                    wish_speed=speed,
                    jump=jump,
                    yaw=claimed.yaw,
                )
                result = self.physics.step(
                    previous.position,
                    previous.velocity,
                    previous.yaw,
                    intent,
                )
                self.replays_run += 1
                gap = result.position.distance_to(claimed.position)
                if gap < best:
                    best = gap
                if best <= 0.5:  # early exit: clearly reachable
                    return best
        return best

    def forget(self, player_id: int) -> None:
        self._last_seen.pop(player_id, None)
