"""WatchmenNode: the per-player protocol state machine.

One node plays all three roles of Figure 3 at once:

- **publisher** — each frame it pushes its (signed) state to its current
  proxy: frequent state updates every frame, guidance and position-only
  updates once per second, kill claims when its avatar scores;
- **proxy** — for each client assigned to it by the verifiable schedule it
  keeps the subscriber table, verifies the client's updates/subscriptions/
  claims (proxy-grade confidence), forwards updates to the right audience,
  and hands everything off to the next proxy at epoch boundaries;
- **subscriber/witness** — it maintains a local view of the other avatars
  from received updates, subscribes according to its interest sets, and
  verifies whatever it can see (IS/VS/other-grade confidence).

Nodes never mutate each other; all communication goes through the
datagram transport.  Cheats plug in as a :class:`NodeBehaviour` that may
rewrite, drop, duplicate or fabricate a node's outgoing messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace as dataclass_replace
from typing import Callable, Protocol

from repro.core.config import WatchmenConfig
from repro.core.membership import MembershipView
from repro.core.messages import (
    ACKABLE_TYPES,
    SUB_INTEREST,
    SUB_VISION,
    AckMessage,
    GameMessage,
    GuidanceMessage,
    HandoffMessage,
    HandoffSummary,
    KillClaim,
    MisbehaviorEvidence,
    PositionUpdate,
    ProjectileSpawn,
    RemovalProposal,
    StateUpdate,
    SubscriptionRequest,
    signable_bytes,
)
from repro.core.proxy import ProxySchedule
from repro.core.subscriptions import SubscriberTable, SubscriptionPlanner
from repro.core.wire import encoded_size
from repro.core.verification import (
    AimVerifier,
    CheatRating,
    CheckKind,
    Confidence,
    GuidanceVerifier,
    KillVerifier,
    PositionVerifier,
    ProjectileTracker,
    RateVerifier,
    SubscriptionVerifier,
)
from repro.crypto.signatures import HmacSigner
from repro.game.avatar import AvatarSnapshot, snapshot_delta_fields
from repro.game.deadreckoning import GuidancePrediction, predict_linear
from repro.game.gamemap import GameMap
from repro.game.interest import InteractionRecency, LosCache
from repro.game.vector import Vec3
from repro.game.physics import Physics
from repro.obs.registry import (
    NULL_COUNTER,
    NULL_HISTOGRAM,
    MetricsRegistry,
    get_registry,
)

__all__ = ["NodeBehaviour", "HonestBehaviour", "WatchmenNode", "NodeMetrics"]


class NodeBehaviour(Protocol):
    """The cheat-injection surface: hooks on a node's externally visible acts.

    Honest nodes use :class:`HonestBehaviour` (identity hooks).  Cheats
    override some hooks; see :mod:`repro.cheats`.
    """

    def mutate_snapshot(
        self, frame: int, snapshot: AvatarSnapshot
    ) -> AvatarSnapshot: ...

    def filter_outgoing(
        self, frame: int, message: GameMessage, destination: int
    ) -> list[tuple[GameMessage, int]]: ...

    def extra_messages(self, frame: int) -> list[tuple[GameMessage, int]]: ...


class HonestBehaviour:
    """Identity hooks: play exactly by the protocol."""

    def mutate_snapshot(self, frame: int, snapshot: AvatarSnapshot) -> AvatarSnapshot:
        del frame
        return snapshot

    def filter_outgoing(
        self, frame: int, message: GameMessage, destination: int
    ) -> list[tuple[GameMessage, int]]:
        del frame
        return [(message, destination)]

    def extra_messages(self, frame: int) -> list[tuple[GameMessage, int]]:
        del frame
        return []


#: Update-age histogram bounds, in frames (0 = same-frame delivery).
AGE_BUCKETS = (0.0, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0, 48.0, 64.0)


@dataclass
class NodeMetrics:
    """Everything a node measures locally.

    The plain fields remain the per-node read API; :meth:`bind` wires the
    same observations into a shared :class:`MetricsRegistry` so session
    totals (counters, the update-age histogram) come for free.  Unbound
    instances feed null singletons — zero overhead, no registry needed.
    """

    update_ages: list[tuple[str, int]] = field(default_factory=list)  # (kind, frames)
    ratings: list[CheatRating] = field(default_factory=list)
    signature_failures: int = 0
    replayed_messages: int = 0
    direct_update_violations: int = 0
    forwarded_messages: int = 0

    def __post_init__(self) -> None:
        self._ctr_signature = NULL_COUNTER
        self._ctr_replayed = NULL_COUNTER
        self._ctr_direct = NULL_COUNTER
        self._ctr_forwarded = NULL_COUNTER
        self._ctr_ratings = NULL_COUNTER
        self._ctr_suspicious = NULL_COUNTER
        self._hist_age = NULL_HISTOGRAM

    def bind(self, registry: MetricsRegistry) -> None:
        """Mirror this node's observations into session-wide instruments."""
        self._ctr_signature = registry.counter("node.signature_failures")
        self._ctr_replayed = registry.counter("node.replayed_messages")
        self._ctr_direct = registry.counter("node.direct_update_violations")
        self._ctr_forwarded = registry.counter("node.forwarded_messages")
        self._ctr_ratings = registry.counter("node.ratings_emitted")
        self._ctr_suspicious = registry.counter("node.ratings_suspicious")
        self._hist_age = registry.histogram("node.update_age_frames", AGE_BUCKETS)

    def ages_of(self, kind: str | None = None) -> list[int]:
        return [age for k, age in self.update_ages if kind is None or k == kind]

    # ---- recording (each mirrors into the bound registry) ----------------

    def count_signature_failure(self) -> None:
        self.signature_failures += 1
        self._ctr_signature.inc()

    def count_replayed_message(self) -> None:
        self.replayed_messages += 1
        self._ctr_replayed.inc()

    def count_direct_update_violation(self) -> None:
        self.direct_update_violations += 1
        self._ctr_direct.inc()

    def count_forwarded_message(self) -> None:
        self.forwarded_messages += 1
        self._ctr_forwarded.inc()

    def record_age(self, kind: str, age: int) -> None:
        self.update_ages.append((kind, age))
        self._hist_age.record(float(age))

    def record_rating(self, rating: CheatRating) -> None:
        self.ratings.append(rating)
        self._ctr_ratings.inc()
        if rating.suspicious:
            self._ctr_suspicious.inc()


@dataclass
class _ClientState:
    """Proxy-side state for one client."""

    table: SubscriberTable
    rate: RateVerifier
    last_snapshot: AvatarSnapshot | None = None
    update_count: int = 0
    suspicion_flags: int = 0
    predecessor_summaries: tuple[HandoffSummary, ...] = ()
    #: Recent per-frame snapshots, so subscriptions are verified against
    #: the client's pose *when he planned them*, not his freshest one.
    history: dict[int, AvatarSnapshot] = field(default_factory=dict)

    def remember(self, snapshot: AvatarSnapshot, keep: int = 32) -> None:
        self.history[snapshot.frame] = snapshot
        if len(self.history) > keep:
            for frame in sorted(self.history)[: len(self.history) - keep]:
                del self.history[frame]

    def snapshot_near(self, frame: int, window: int = 4) -> AvatarSnapshot | None:
        """The stored snapshot closest to ``frame`` within ``window``."""
        best = None
        best_gap = window + 1
        for stored_frame, snapshot in self.history.items():
            gap = abs(stored_frame - frame)
            if gap < best_gap:
                best, best_gap = snapshot, gap
        return best


@dataclass
class _PendingSend:
    """One critical message awaiting its hop-by-hop ack (reliable delivery)."""

    message: GameMessage  # already signed; retransmissions reuse the bytes
    destination: int
    next_frame: int  # when the next retransmission fires
    attempt: int = 0  # retransmissions performed so far


class WatchmenNode:
    """One player's full protocol endpoint."""

    def __init__(
        self,
        player_id: int,
        roster: list[int],
        game_map: GameMap,
        config: WatchmenConfig,
        schedule: ProxySchedule,
        signer: HmacSigner,
        send: Callable[[int, int, GameMessage, int], bool],
        behaviour: NodeBehaviour | None = None,
        rating_sink: Callable[[CheatRating], None] | None = None,
        is_server: bool = False,
        registry: MetricsRegistry | None = None,
        los_cache: LosCache | None = None,
    ) -> None:
        self.player_id = player_id
        #: Hybrid-architecture servers proxy and verify but never publish
        #: an avatar of their own (Section VI "Hybrid architecture").
        self.is_server = is_server
        self.roster = sorted(roster)
        self.game_map = game_map
        self.config = config
        self.schedule = schedule
        self.signer = signer
        self._send_raw = send
        self.behaviour: NodeBehaviour = behaviour or HonestBehaviour()
        self._rating_sink = rating_sink
        obs = registry if registry is not None else get_registry()
        self._obs = obs
        self.metrics = NodeMetrics()
        self.metrics.bind(obs)
        self._hist_verify = obs.histogram("node.verify_seconds")
        self._hist_handle = obs.histogram("node.on_message_seconds")
        self._handled_by_type: dict[type, object] = {}

        physics = Physics(game_map)
        self.action_repetition_verifier = None
        if config.action_repetition:
            from repro.core.action_repetition import ActionRepetitionVerifier

            self.action_repetition_verifier = ActionRepetitionVerifier(physics)
        self.recency = InteractionRecency()
        self.planner = SubscriptionPlanner(
            player_id, game_map, config, self.recency, los=los_cache
        )
        self.position_verifier = PositionVerifier(physics)
        self.aim_verifier = AimVerifier(
            max_turn_rate=physics.config.max_turn_rate,
            frame_seconds=config.frame_seconds,
        )
        self.guidance_verifier = GuidanceVerifier(
            config.frame_seconds,
            check_horizon_frames=config.guidance_check_frames,
        )
        self.projectiles = ProjectileTracker()
        self.kill_verifier = KillVerifier(game_map, projectiles=self.projectiles)
        self.subscription_verifier = SubscriptionVerifier(game_map, config.interest)

        self.membership = MembershipView(
            list(self.roster),
            silence_threshold_frames=config.membership_silence_frames,
        )
        self.known: dict[int, AvatarSnapshot] = {}
        #: Optional oracle over the player's *own* upcoming movement
        #: (his input intentions).  The paper's guidance messages carry
        #: "AI guidance instructions that enable the player to simulate the
        #: avatar's near-future actions" — in trace replay the publisher's
        #: intent is his recorded future.  Set by the session.
        self.own_future = None  # frame -> AvatarSnapshot | None
        self.current_frame = 0
        self.current_sets = None  # latest PlannedSubscriptions
        self._sequence = 0
        self._seen_sequences: dict[int, set[int]] = {}
        self._clients: dict[int, _ClientState] = {}
        self._pending_kills: list[KillClaim] = []
        self._pending_projectiles: list[ProjectileSpawn] = []
        #: Projectile kill claims wait a few frames before judgement so the
        #: corresponding spawn announcement can arrive (a posteriori check).
        self._deferred_claims: list[tuple[int, KillClaim, float]] = []
        self._last_published: AvatarSnapshot | None = None

        # -- robustness (both layers config-gated, default off) ------------
        #: (destination, original sender, sequence) -> awaiting ack
        self._pending_acks: dict[tuple[int, int, int], _PendingSend] = {}
        #: the proxy my publications currently route to (failover tracking)
        self._active_proxy: int | None = None
        #: every failover performed: (frame, scheduled_proxy, replacement)
        self.failover_events: list[tuple[int, int, int]] = []
        #: roster members currently presumed crashed (heartbeat silence)
        self._dead_suspects: frozenset[int] = frozenset()
        self._ctr_failovers = obs.counter("node.proxy_failovers")
        self._ctr_acks = obs.counter("node.acks_sent")
        self._ctr_retries = obs.counter("node.ack_retries")
        self._ctr_retry_exhausted = obs.counter("node.ack_retry_exhausted")

        # -- liveness self-defense (always on; silent until challenged) ----
        #: last frame a removal proposal named *this* node; defense bursts
        #: continue for a removal-delay window past it
        self._defense_until_frame: int = -1
        self._last_defense_frame: int = -(10**9)
        self._ctr_defenses = obs.counter("node.liveness_defenses")

        # -- Byzantine hardening (config-gated, default off) ----------------
        #: per-sender low watermark: sequences at or below were evicted
        #: from the dedup window and screen as *silent* duplicates
        self._seen_watermark: dict[int, int] = {}
        #: first-seen signed StateUpdate per (sender, sequence): what the
        #: equivocation detector cross-checks later copies against
        self._update_archive: dict[int, dict[int, StateUpdate]] = {}
        #: accused players this node already broadcast evidence about
        self._evidence_emitted: set[int] = set()
        #: token-bucket state per transmitting hop: (tokens, last frame)
        self._rate_buckets: dict[int, tuple[float, int]] = {}
        self._rate_strikes: dict[int, int] = {}
        self._quarantined_until: dict[int, int] = {}
        #: (proxy, subject, epoch) starvation suspicions already rated
        self._starvation_rated: set[tuple[int, int, int]] = set()
        #: (frame, src) per quarantine imposed — the chaos harness gates
        #: ``honest_quarantines == 0`` on these
        self.quarantine_events: list[tuple[int, int]] = []
        #: (frame, accused) per cryptographically detected equivocation
        self.equivocation_events: list[tuple[int, int]] = []
        #: (frame, subject, kind) circumstantial byzantine suspicions
        #: (kind: "tamper_hop" | "starvation" | "ack_withhold")
        self.suspicion_events: list[tuple[int, int, str]] = []
        #: optional sink into the transport's unified drop accounting
        #: (set by the session to ``DatagramNetwork.count_protocol_drop``)
        self.protocol_drop: Callable[[str], None] | None = None
        self._ctr_equivocations = obs.counter("node.equivocations_detected")
        self._ctr_quarantines = obs.counter("node.quarantines")
        self._ctr_convictions = obs.counter("node.evidence_convictions")

    # ------------------------------------------------------------------
    # Frame driving (called by the session)
    # ------------------------------------------------------------------

    def on_frame(
        self, frame: int, own_snapshot: AvatarSnapshot | None = None
    ) -> None:
        """Run one frame of publisher + proxy duties.

        Servers (``is_server``) pass no snapshot and perform only the
        proxy/verification half.
        """
        self.current_frame = frame
        epoch = self.config.epoch_of_frame(frame)

        # Agreed departures take effect at epoch boundaries ("removed in
        # the next round ... from the proxy pool").
        if frame % self.config.proxy_period_frames == 0:
            applied = self.membership.apply_removals(epoch)
            if applied:
                self._apply_roster_removals(applied)

        # Handoffs first so the new proxies are live for this epoch.
        if frame > 0 and frame % self.config.proxy_period_frames == 0:
            self._perform_handoffs(frame, epoch)
        if frame % self.config.proxy_period_frames == 0:
            self._register_epoch_clients(epoch)

        # -- proxy liveness / failover (config-gated; Section VI extended) ----
        if self.config.proxy_failover and not self.is_server:
            self._update_proxy_liveness(frame, epoch)

        # -- publisher duties (players only) -----------------------------------
        if own_snapshot is not None and not self.is_server:
            own_snapshot = self.behaviour.mutate_snapshot(frame, own_snapshot)
            self.known[self.player_id] = own_snapshot
            my_proxy = self.schedule.proxy_of(self.player_id, epoch)
            proxies = self._publish_proxies(frame, epoch, my_proxy)
            self._publish_updates(frame, own_snapshot, proxies)
            self._publish_subscriptions(frame, own_snapshot, proxies)
            self._publish_kill_claims(frame, proxies)

        # -- deferred projectile-kill judgements -------------------------------
        due = [c for c in self._deferred_claims if c[0] <= frame]
        if due:
            self._deferred_claims = [
                c for c in self._deferred_claims if c[0] > frame
            ]
            for _, claim, confidence in due:
                self._judge_kill_claim_now(claim, confidence)

        # -- churn detection (heartbeats; Section VI) -------------------------
        self._propose_departures(frame, epoch)
        if not self.is_server:
            self._drive_defense(frame)

        # -- selective-forwarding suspicion (Byzantine hardening, gated) ------
        if self.config.byzantine_hardening:
            self._scan_starvation(frame, epoch)

        # -- proxy duties ----------------------------------------------------
        self._poll_client_silence(frame)
        for state in self._clients.values():
            state.table.expire(frame)

        # -- reliable delivery: retransmit unacked critical messages ----------
        if self.config.reliable_delivery:
            self._drive_retries(frame)

        # -- behaviour extras (fabricated traffic from cheats) ---------------
        # Extras bypass filter_outgoing: they are already the behaviour's
        # final word (a delay cheat would otherwise re-capture them).
        for message, destination in self.behaviour.extra_messages(frame):
            self._transmit_unfiltered(message, destination)

    def estimate_of(self, other_id: int, frame: int) -> AvatarSnapshot | None:
        """What this node would *render* for another avatar at ``frame``.

        Games display remote avatars by dead-reckoning the freshest
        information: the last received snapshot extrapolated along its
        velocity (bounded by the guidance horizon).  The gap between this
        estimate and the avatar's true state is the paper's notion of lag
        ("the difference between the game's state at the player and the
        actual state").
        """
        snapshot = self.known.get(other_id)
        if snapshot is None:
            return None
        ahead = min(
            max(0, frame - snapshot.frame), self.config.guidance_horizon_frames
        )
        if ahead == 0 or not snapshot.alive:
            return snapshot
        extrapolated = snapshot.position + snapshot.velocity * (
            ahead * self.config.frame_seconds
        )
        return dataclass_replace(snapshot, frame=frame, position=extrapolated)

    def announce_projectile(
        self, frame: int, weapon: str, origin: Vec3, velocity: Vec3
    ) -> None:
        """Queue the announcement of a short-lived object we created."""
        self._pending_projectiles.append(
            ProjectileSpawn(
                sender_id=self.player_id,
                frame=frame,
                sequence=0,  # assigned at send time
                weapon=weapon,
                origin=origin,
                velocity=velocity,
            )
        )
        # Our own verifiers also remember our announcements (self-view).
        self.projectiles.record(self.player_id, frame, weapon, origin, velocity)

    def claim_kill(self, frame: int, victim_id: int, weapon: str, distance: float) -> None:
        """Queue a kill claim for publication this frame (from the game)."""
        self._pending_kills.append(
            KillClaim(
                sender_id=self.player_id,
                victim_id=victim_id,
                frame=frame,
                sequence=0,  # assigned at send time
                weapon=weapon,
                claimed_distance=distance,
            )
        )
        self.recency.record(self.player_id, victim_id, frame)

    def note_interaction(self, other_id: int, frame: int) -> None:
        """Record an interaction (being shot at) for the attention metric."""
        self.recency.record(self.player_id, other_id, frame)

    # ------------------------------------------------------------------
    # Proxy liveness & failover (config-gated graceful degradation)
    # ------------------------------------------------------------------

    def _node_seems_dead(self, node_id: int, frame: int) -> bool:
        """Heartbeat-based crash suspicion, well before the removal quorum.

        The 1 Hz position updates double as heartbeats (Section VI); a
        roster member silent for ``proxy_silence_threshold_frames`` is
        presumed crashed for routing purposes only — membership eviction
        still requires the full quorum protocol.
        """
        if node_id == self.player_id:
            return False
        if node_id in self.membership.removed:
            return True
        if node_id in self.membership.exempt:
            return False
        last = self.membership.last_heard_frame(node_id)
        return (
            last is not None
            and frame - last > self.config.proxy_silence_threshold_frames
        )

    def _live_proxy_of(self, player_id: int, epoch: int, frame: int) -> int:
        """The first failover candidate not currently presumed dead."""
        primary = self.schedule.proxy_of(player_id, epoch)
        if not self.config.proxy_failover:
            return primary
        for attempt in range(self.config.max_failover_attempts + 1):
            candidate = self.schedule.candidate_of(player_id, epoch, attempt)
            if not self._node_seems_dead(candidate, frame):
                return candidate
        return primary  # every candidate suspect: fall back to the schedule

    def _publish_proxies(self, frame: int, epoch: int, scheduled: int) -> list[int]:
        """Destinations for this frame's publications.

        Normally just the scheduled proxy.  During failover the live
        candidate comes first, with a concurrent copy to the scheduled
        proxy — if the suspicion was spurious the real proxy keeps
        verifying and forwarding, and if it crashed the copy merely
        evaporates, so either way no client is stranded.
        """
        if not self.config.proxy_failover:
            return [scheduled]
        live = self._live_proxy_of(self.player_id, epoch, frame)
        if live == scheduled:
            return [scheduled]
        return [live, scheduled]

    def _failover_rank(self, player_id: int, epoch: int) -> int | None:
        """My position in a player's verifiable candidate walk, or None.

        0 means scheduled proxy; 1..max_failover_attempts means I am a
        legitimate stand-in receivers may accept traffic through.  This
        is the bounded relaxation failover buys: a route is valid iff it
        hits one of the first ``max_failover_attempts`` candidates, all
        of which any verifier can recompute from the shared schedule.
        """
        try:
            if self.schedule.proxy_of(player_id, epoch) == self.player_id:
                return 0
            if not self.config.proxy_failover:
                return None
            for attempt in range(1, self.config.max_failover_attempts + 1):
                if (
                    self.schedule.candidate_of(player_id, epoch, attempt)
                    == self.player_id
                ):
                    return attempt
        except KeyError:
            return None
        return None

    def _update_proxy_liveness(self, frame: int, epoch: int) -> None:
        """Detect newly-dead proxies; fail over and re-subscribe."""
        suspects = frozenset(
            node
            for node in self.roster
            if node != self.player_id and self._node_seems_dead(node, frame)
        )
        newly_dead = suspects - self._dead_suspects
        self._dead_suspects = suspects

        scheduled = self.schedule.proxy_of(self.player_id, epoch)
        chosen = self._live_proxy_of(self.player_id, epoch, frame)
        if chosen != self._active_proxy:
            previous = self._active_proxy
            self._active_proxy = chosen
            if chosen != scheduled and previous is not None:
                # Genuine failover (not a routine epoch rotation): record
                # it and push our subscriptions through the new route.
                self.failover_events.append((frame, scheduled, chosen))
                self._ctr_failovers.inc()
                self._resubscribe(frame, epoch, targets=None)
        if newly_dead and self.current_sets is not None:
            # A *target's* proxy died: our subscription lives in its
            # table, which the stand-in candidate does not have yet.
            # Re-subscribe so the registration reaches the replacement.
            affected = [
                target
                for target in sorted(
                    self.current_sets.interest | self.current_sets.vision
                )
                if target in self.known or target in self.roster
            ]
            affected = [
                target
                for target in affected
                if self._scheduled_proxy_in(target, epoch, newly_dead)
            ]
            if affected:
                self._resubscribe(frame, epoch, targets=affected)

    def _scheduled_proxy_in(
        self, target: int, epoch: int, suspects: frozenset[int]
    ) -> bool:
        try:
            return self.schedule.proxy_of(target, epoch) in suspects
        except KeyError:
            return False

    def _resubscribe(
        self, frame: int, epoch: int, targets: list[int] | None
    ) -> None:
        """Re-send current subscriptions (all, or for specific targets)."""
        sets = self.current_sets
        if sets is None:
            return
        scheduled = self.schedule.proxy_of(self.player_id, epoch)
        proxies = self._publish_proxies(frame, epoch, scheduled)
        for kind, members in (
            (SUB_INTEREST, sorted(sets.interest)),
            (SUB_VISION, sorted(sets.vision)),
        ):
            for target in members:
                if targets is not None and target not in targets:
                    continue
                request = SubscriptionRequest(
                    sender_id=self.player_id,
                    target_id=target,
                    kind=kind,
                    frame=frame,
                    sequence=self._next_sequence(),
                )
                for proxy in proxies:
                    self._transmit(request, proxy)

    # ------------------------------------------------------------------
    # Reliable delivery (ack/retry for critical low-rate messages)
    # ------------------------------------------------------------------

    def _register_pending(self, message: GameMessage, destination: int) -> None:
        """Start tracking an ackable send (no-op for retransmissions)."""
        key = (destination, message.sender_id, message.sequence)
        if key not in self._pending_acks:
            self._pending_acks[key] = _PendingSend(
                message=message,
                destination=destination,
                next_frame=self.current_frame + self.config.ack_retry_base_frames,
            )

    def _drive_retries(self, frame: int) -> None:
        """Retransmit due unacked messages with capped exponential backoff."""
        due = sorted(
            key for key, p in self._pending_acks.items() if p.next_frame <= frame
        )
        for key in due:
            pending = self._pending_acks.pop(key, None)
            if pending is None:
                continue
            if pending.attempt >= self.config.ack_retry_max_attempts:
                self._ctr_retry_exhausted.inc()
                if self.config.byzantine_hardening and not self._node_seems_dead(
                    pending.destination, frame
                ):
                    # The whole retry ladder went unanswered while the
                    # destination kept heartbeating: it processes traffic
                    # but never acknowledges (ack withholding) — or the
                    # path is asymmetrically cut, hence the low confidence.
                    self.suspicion_events.append(
                        (frame, pending.destination, "ack_withhold")
                    )
                    self._emit_rating(
                        CheatRating(
                            verifier_id=self.player_id,
                            subject_id=pending.destination,
                            frame=frame,
                            check=CheckKind.RATE,
                            rating=6.0,
                            confidence=Confidence.OTHER,
                            deviation=float(pending.attempt),
                            detail=(
                                "retry ladder exhausted against a live "
                                "destination (ack withholding?)"
                            ),
                        )
                    )
                continue  # give up; the destination is gone or the path is cut
            pending.attempt += 1
            backoff = min(
                self.config.ack_retry_base_frames * (2 ** pending.attempt),
                self.config.ack_retry_max_backoff_frames,
            )
            pending.next_frame = frame + backoff
            destination = self._retry_destination(
                pending.message, pending.destination, frame
            )
            pending.destination = destination
            # Re-file under the (possibly re-routed) key *before* sending,
            # so _register_pending sees it and keeps the attempt count.
            self._pending_acks[
                (destination, pending.message.sender_id, pending.message.sequence)
            ] = pending
            self._ctr_retries.inc()
            self._transmit_unfiltered(pending.message, destination)

    def _retry_destination(
        self, message: GameMessage, current: int, frame: int
    ) -> int:
        """Re-route a retry around a proxy that died since the first send."""
        if not self.config.proxy_failover or not self._node_seems_dead(
            current, frame
        ):
            return current
        epoch = self.config.epoch_of_frame(frame)
        try:
            if (
                isinstance(message, (SubscriptionRequest, KillClaim))
                and message.sender_id == self.player_id
            ):
                return self._live_proxy_of(self.player_id, epoch, frame)
            if (
                isinstance(message, SubscriptionRequest)
                and message.sender_id != self.player_id
            ):
                # Stage-2 relay: re-aim at the target's live proxy.
                return self._live_proxy_of(message.target_id, epoch, frame)
            if isinstance(message, HandoffMessage):
                return self._live_proxy_of(message.player_id, epoch, frame)
        except KeyError:
            return current
        return current  # direct sends (proposals, witness copies): keep

    def _send_ack(self, src: int, message: GameMessage) -> None:
        """Receipt for an ackable message, back to the sending hop."""
        ack = AckMessage(
            sender_id=self.player_id,
            frame=self.current_frame,
            sequence=self._next_sequence(),
            acked_sender_id=message.sender_id,
            acked_sequence=message.sequence,
        )
        self._ctr_acks.inc()
        self._transmit(ack, src)

    def _on_ack(self, src: int, ack: AckMessage) -> None:
        self._pending_acks.pop((src, ack.acked_sender_id, ack.acked_sequence), None)

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------

    def _publish_updates(
        self, frame: int, snapshot: AvatarSnapshot, proxies: list[int]
    ) -> None:
        cfg = self.config
        if frame % cfg.frequent_interval_frames == 0:
            # Delta-code against the previous update; send a keyframe once
            # per second so late receivers resynchronise.
            if self._last_published is None or frame % cfg.keyframe_interval_frames == 0:
                delta: tuple[str, ...] = ()
            else:
                delta = tuple(
                    snapshot_delta_fields(self._last_published, snapshot)
                ) or ("yaw",)  # a heartbeat-sized minimal delta
            update = StateUpdate(
                sender_id=self.player_id,
                frame=frame,
                sequence=self._next_sequence(),
                snapshot=snapshot,
                delta_fields=delta,
            )
            self._last_published = snapshot
            self._route_publication(update, proxies)
        if frame % cfg.guidance_interval_frames == 0:
            guidance = GuidanceMessage(
                sender_id=self.player_id,
                frame=frame,
                sequence=self._next_sequence(),
                snapshot=snapshot,
                prediction=self._guidance_prediction(frame, snapshot),
            )
            self._route_publication(guidance, proxies)
        if frame % cfg.position_interval_frames == 0:
            position = PositionUpdate(
                sender_id=self.player_id,
                frame=frame,
                sequence=self._next_sequence(),
                snapshot=snapshot.position_only(),
            )
            self._route_publication(position, proxies)

    def _guidance_prediction(self, frame: int, snapshot: AvatarSnapshot) -> GuidancePrediction:
        """Intent-informed dead reckoning for one's own avatar.

        When the player's upcoming inputs are known (``own_future``), the
        predicted velocity is the mean velocity over the prediction
        horizon — the paper's AI-guidance-enhanced dead reckoning [16].
        Otherwise fall back to first-order (current velocity).
        """
        horizon = self.config.guidance_horizon_frames
        window = self.config.guidance_check_frames
        if self.own_future is not None:
            ahead = self.own_future(frame + window)
            if ahead is not None and ahead.alive and snapshot.alive:
                dt = self.config.frame_seconds * window
                velocity = (ahead.position - snapshot.position) / dt
                return GuidancePrediction(
                    frame=frame,
                    origin=snapshot.position,
                    velocity=velocity,
                    yaw=snapshot.yaw,
                    horizon_frames=horizon,
                )
        return predict_linear(snapshot, horizon)

    def _route_publication(self, message: GameMessage, proxies: list[int]) -> None:
        """First hop of Figure 3: everything goes through the proxy.

        ``proxies`` normally holds just the scheduled proxy; during a
        failover it is [live candidate, scheduled proxy] (receivers dedup
        by sequence).  With ``relax_first_hop`` (Section VI, optimization
        3) updates go straight to the audience, with concurrent copies to
        the proxies for verification.
        """
        if not self.config.relax_first_hop or isinstance(
            message, SubscriptionRequest
        ):
            for proxy in proxies:
                self._transmit(message, proxy)
            return
        audience = self._direct_audience(message)
        for destination in audience:
            self._transmit(message, destination)
        for proxy in proxies:  # concurrent verification copy
            self._transmit(message, proxy)

    def _direct_audience(self, message: GameMessage) -> list[int]:
        """Relaxed-mode audience; mirrors the proxy's forwarding rules.

        The node only knows its audience through what its proxy told it at
        the latest handoff; we approximate with its own subscriber table if
        it happens to be its own proxy's client record, falling back to the
        symmetric heuristic (players whose IS/VS I am likely in cannot be
        computed locally), so relaxed mode broadcasts frequent updates to
        players that have *me* in their planned sets — which the session
        wires through the shared subscriber oracle.
        """
        oracle = getattr(self, "audience_oracle", None)
        if oracle is None:
            return []
        return oracle(self.player_id, message)

    def _publish_subscriptions(
        self, frame: int, snapshot: AvatarSnapshot, proxies: list[int]
    ) -> None:
        plan = self.planner.plan(frame, snapshot, self.known)
        self.current_sets = plan
        for target in sorted(plan.new_interest):
            request = SubscriptionRequest(
                sender_id=self.player_id,
                target_id=target,
                kind=SUB_INTEREST,
                frame=frame,
                sequence=self._next_sequence(),
            )
            for proxy in proxies:
                self._transmit(request, proxy)
        for target in sorted(plan.new_vision):
            request = SubscriptionRequest(
                sender_id=self.player_id,
                target_id=target,
                kind=SUB_VISION,
                frame=frame,
                sequence=self._next_sequence(),
            )
            for proxy in proxies:
                self._transmit(request, proxy)

    def _publish_kill_claims(self, frame: int, proxies: list[int]) -> None:
        for spawn in self._pending_projectiles:
            stamped = ProjectileSpawn(
                sender_id=spawn.sender_id,
                frame=spawn.frame,
                sequence=self._next_sequence(),
                weapon=spawn.weapon,
                origin=spawn.origin,
                velocity=spawn.velocity,
            )
            for proxy in proxies:
                self._transmit(stamped, proxy)
        self._pending_projectiles.clear()
        for claim in self._pending_kills:
            stamped = KillClaim(
                sender_id=claim.sender_id,
                victim_id=claim.victim_id,
                frame=claim.frame,
                sequence=self._next_sequence(),
                weapon=claim.weapon,
                claimed_distance=claim.claimed_distance,
            )
            for proxy in proxies:
                self._transmit(stamped, proxy)
        self._pending_kills.clear()

    # ------------------------------------------------------------------
    # Proxy duties
    # ------------------------------------------------------------------

    def _perform_handoffs(self, frame: int, new_epoch: int) -> None:
        """End-of-tenure: ship each client's state to its next proxy."""
        for client_id in list(self._clients):
            new_proxy = self.schedule.proxy_of(client_id, new_epoch)
            if self.config.proxy_failover:
                # Hand off to the candidate that will actually serve the
                # client next epoch (the scheduled one may be dead).
                new_proxy = self._live_proxy_of(client_id, new_epoch, frame)
            if new_proxy == self.player_id:
                continue  # re-elected; keep serving
            was_proxy = (
                self.schedule.proxy_of(client_id, new_epoch - 1) == self.player_id
            )
            if not was_proxy and self.config.proxy_failover:
                # A verifiable stand-in that actually served the client
                # during the ending epoch hands off like a real proxy.
                state = self._clients[client_id]
                was_proxy = state.update_count > 0 and self.schedule.verify_route(
                    client_id,
                    new_epoch - 1,
                    self.player_id,
                    self.config.max_failover_attempts,
                )
            if not was_proxy:
                # Ghost entry from grace-period traffic; only the real
                # outgoing proxy performs the handoff.
                del self._clients[client_id]
                continue
            state = self._clients.pop(client_id)
            interest, vision = state.table.export_sets(frame)
            my_summary = HandoffSummary(
                player_id=client_id,
                epoch=new_epoch - 1,
                proxy_id=self.player_id,
                last_snapshot=state.last_snapshot,
                update_count=state.update_count,
                suspicion_flags=state.suspicion_flags,
            )
            depth = self.config.handoff_depth
            summaries = (my_summary,) + state.predecessor_summaries[: depth - 1]
            handoff = HandoffMessage(
                sender_id=self.player_id,
                player_id=client_id,
                epoch=new_epoch - 1,
                sequence=self._next_sequence(),
                interest_subscribers=interest,
                vision_subscribers=vision,
                summaries=summaries,
            )
            self._transmit(handoff, new_proxy)

    def _register_epoch_clients(self, epoch: int) -> None:
        """Create state for every client the schedule assigns us this epoch.

        The schedule is known to everyone, so a proxy watches its clients
        from the epoch's first frame — a client that never sends anything
        (escaping) is caught by the silence poll, not ignored.
        """
        for client_id in self.schedule.clients_of(self.player_id, epoch):
            if client_id != self.player_id:
                self._client_state(client_id)

    def _apply_roster_removals(self, removed: set[int]) -> None:
        """Swap to the reduced schedule every honest node derives alike."""
        self.roster = [p for p in self.roster if p not in removed]
        self.schedule = self.schedule.without_players(removed)
        for player in removed:
            self._clients.pop(player, None)
            self.known.pop(player, None)

    def _propose_departures(self, frame: int, epoch: int) -> None:
        """Broadcast signed removal proposals for long-silent players."""
        for subject in self.membership.silent_players(frame, self.player_id):
            if not self.membership.should_propose(subject):
                continue
            self.membership.note_own_proposal(subject)
            proposal = RemovalProposal(
                sender_id=self.player_id,
                subject_id=subject,
                frame=frame,
                sequence=self._next_sequence(),
            )
            # Count our own vote, then broadcast to the current roster —
            # *including* the subject: the signed accusation doubles as a
            # liveness challenge a live player answers (and a dead one
            # cannot), so correlated first-hop loss alone can't evict.
            self.membership.record_proposal(
                self.player_id, subject, frame, epoch
            )
            for destination in self.membership.current_roster():
                if destination != self.player_id:
                    self._transmit(proposal, destination)

    # repro-mc: commutes[membership] -- record_proposal is a set-insert
    # keyed by (proposer, subject); every delivery in one frame sees the
    # same frame/epoch, so the quorum trip point and the scheduled
    # removal epoch are order-independent within a flush (cross-frame
    # races are the defer decisions the model checker keeps exploring)
    def _on_removal_proposal(self, message: RemovalProposal) -> None:
        if message.subject_id == self.player_id:
            # The roster suspects *me*.  My heartbeats all route through
            # one proxy, so a lossy or dead first hop silences me to
            # everyone at once; answer the challenge with direct bursts
            # that bypass it, for a full removal-delay window (rescind on
            # hearing clears the suspicion wherever a burst lands).
            self._defense_until_frame = max(
                self._defense_until_frame,
                self.current_frame + self.config.proxy_period_frames,
            )
            self._defend_liveness(self.current_frame)
            return
        epoch = self.config.epoch_of_frame(self.current_frame)
        self.membership.record_proposal(
            message.sender_id,
            message.subject_id,
            self.current_frame,
            epoch,
        )

    def _drive_defense(self, frame: int) -> None:
        """Keep heartbeating directly while the challenge window is open."""
        if frame <= self._defense_until_frame:
            self._defend_liveness(frame)

    def _defend_liveness(self, frame: int) -> None:
        """One direct heartbeat burst to the whole roster, rate-limited."""
        if frame - self._last_defense_frame < self.config.defense_interval_frames:
            return
        snapshot = self.known.get(self.player_id)
        if snapshot is None or self.is_server:
            return
        self._last_defense_frame = frame
        self._ctr_defenses.inc()
        update = PositionUpdate(
            sender_id=self.player_id,
            frame=frame,
            sequence=self._next_sequence(),
            snapshot=snapshot.position_only(),
        )
        # Skip destinations that treat my traffic as first-hop and re-forward
        # it (my proxies/candidates): the forwarded copy would collide with
        # the direct one and read as a replay.  They hear my first-hop
        # publications — which refresh their heartbeat — already.
        forwarders = self._first_hop_acceptors(frame)
        for destination in self.membership.current_roster():
            if destination != self.player_id and destination not in forwarders:
                self._transmit(update, destination)

    def _first_hop_acceptors(self, frame: int) -> set[int]:
        """Nodes that accept-and-forward my direct traffic (see
        ``_accepts_first_hop_from``) — recomputed sender-side from the
        same shared schedule."""
        epoch = self.config.epoch_of_frame(frame)
        acceptors: set[int] = set()
        try:
            acceptors.add(self.schedule.proxy_of(self.player_id, epoch))
            if epoch > 0:
                acceptors.add(self.schedule.proxy_of(self.player_id, epoch - 1))
            if self.config.proxy_failover:
                for attempt in range(1, self.config.max_failover_attempts + 1):
                    acceptors.add(
                        self.schedule.candidate_of(self.player_id, epoch, attempt)
                    )
        except KeyError:
            pass
        return acceptors

    def _client_state(self, client_id: int) -> _ClientState:
        state = self._clients.get(client_id)
        if state is None:
            state = _ClientState(
                table=SubscriberTable(
                    client_id=client_id,
                    retention_frames=self.config.subscription_retention_frames,
                ),
                rate=RateVerifier(
                    expected_interval_frames=self.config.frequent_interval_frames
                ),
            )
            self._clients[client_id] = state
        return state

    def _poll_client_silence(self, frame: int) -> None:
        epoch_start = (
            self.config.epoch_of_frame(frame) * self.config.proxy_period_frames
        )
        for client_id, state in self._clients.items():
            if not self._is_proxy_of(client_id):
                continue  # grace-period ghost; the new proxy watches now
            rating = state.rate.check_silence(
                self.player_id,
                client_id,
                frame,
                Confidence.PROXY,
                not_before_frame=epoch_start,
            )
            if rating is None:
                # Dead air since we took over: a client that sent nothing
                # at all this tenure is escaping (or unreachable).
                last = state.rate.last_arrival_wallclock(client_id)
                silent_for = frame - max(
                    epoch_start, last if last is not None else -(10**9)
                )
                grace = 16  # handoff + first-hop latency
                if last is None and frame > 0 and silent_for > grace:
                    rating = CheatRating(
                        verifier_id=self.player_id,
                        subject_id=client_id,
                        frame=frame,
                        check=CheckKind.RATE,
                        rating=min(10.0, 5.0 + 0.2 * (silent_for - grace)),
                        confidence=Confidence.PROXY,
                        deviation=float(silent_for),
                        detail=f"no traffic at all for {silent_for} frames (escaping?)",
                    )
            if rating is not None:
                self._emit_rating(rating)
                state.suspicion_flags += 1

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------

    def on_message(self, src: int, message: GameMessage) -> None:
        """Entry point for every delivered datagram payload."""
        counter = self._handled_by_type.get(type(message))
        if counter is None:
            counter = self._obs.counter(f"node.handled.{type(message).__name__}")
            self._handled_by_type[type(message)] = counter
        counter.inc()
        with self._hist_handle.time():
            self._dispatch_message(src, message)

    def _dispatch_message(self, src: int, message: GameMessage) -> None:
        if (
            self.config.byzantine_hardening
            and src != self.player_id
            and not self._rate_limit_admit(src)
        ):
            # Flood defense: the sending hop is over its token budget (or
            # already quarantined) — the message is dropped before any
            # signature work, which is the point: verification is the cost
            # a flooder would otherwise impose.
            self._count_protocol_drop("quarantine")
            return
        observe = getattr(self.behaviour, "observe_incoming", None)
        if observe is not None:
            observe(self.current_frame, src, message)
        with self._hist_verify.time():
            accepted = self._verify_envelope(src, message)
        if not accepted:
            return
        if (
            self.config.reliable_delivery
            and src != self.player_id
            and isinstance(message, ACKABLE_TYPES)
        ):
            self._send_ack(src, message)
        if isinstance(message, StateUpdate):
            self._on_state_update(src, message)
        elif isinstance(message, GuidanceMessage):
            self._on_guidance(src, message)
        elif isinstance(message, PositionUpdate):
            self._on_position_update(src, message)
        elif isinstance(message, SubscriptionRequest):
            self._on_subscription(src, message)
        elif isinstance(message, KillClaim):
            self._on_kill_claim(src, message)
        elif isinstance(message, ProjectileSpawn):
            self._on_projectile_spawn(src, message)
        elif isinstance(message, HandoffMessage):
            self._on_handoff(message)
        elif isinstance(message, RemovalProposal):
            self._on_removal_proposal(message)
        elif isinstance(message, MisbehaviorEvidence):
            self._on_misbehavior_evidence(src, message)
        elif isinstance(message, AckMessage):
            self._on_ack(src, message)

    def _verify_envelope(self, src: int, message: GameMessage) -> bool:  # repro-taint: sanitizer
        """Signature + replay screening on every received message."""
        if message.signature is None or not self.signer.verify(
            message.sender_id, signable_bytes(message), message.signature
        ):
            self.metrics.count_signature_failure()
            if self.config.byzantine_hardening and src != message.sender_id:
                # A relayed message that fails its origin signature was
                # mutated *in flight*: the origin's signing path either
                # produces valid bytes or nothing.  Blame the relaying hop,
                # not the named sender — that is exactly the tampering-proxy
                # attack the signatures exist to catch.
                self._count_protocol_drop("tamper")
                self.suspicion_events.append(
                    (self.current_frame, src, "tamper_hop")
                )
                self._emit_rating(
                    CheatRating(
                        verifier_id=self.player_id,
                        subject_id=src,
                        frame=self.current_frame,
                        check=CheckKind.RATE,
                        rating=10.0,
                        confidence=Confidence.PROXY,
                        deviation=1.0,
                        detail="relayed message fails its signature (tampering hop)",
                    )
                )
                return False
            self._emit_rating(
                CheatRating(
                    verifier_id=self.player_id,
                    subject_id=message.sender_id,
                    frame=self.current_frame,
                    check=CheckKind.RATE,
                    rating=10.0,
                    confidence=Confidence.PROXY,
                    deviation=1.0,
                    detail="invalid or missing signature",
                )
            )
            return False
        seen = self._seen_sequences.setdefault(message.sender_id, set())
        if message.sequence <= self._seen_watermark.get(message.sender_id, -1):
            # Below the eviction watermark: this sequence was tracked once
            # and its tombstone has been garbage-collected.  A late
            # retransmit landing here is indistinguishable from a replay,
            # so it is *always* screened silently — never reprocessed (the
            # pre-watermark code silently accepted these) and never treated
            # as cheat evidence.
            return self._screen_duplicate(src, message, tracked=False)
        if message.sequence in seen:
            return self._screen_duplicate(src, message, tracked=True)
        seen.add(message.sequence)
        if self.config.byzantine_hardening and isinstance(message, StateUpdate):
            # First-seen signed update per (sender, sequence): the archive
            # the equivocation detector cross-checks duplicates against.
            self._update_archive.setdefault(message.sender_id, {})[
                message.sequence
            ] = message
        if len(seen) > 4096:  # bounded memory; old sequences cannot return
            kept = sorted(seen)
            # The watermark is the highest evicted sequence: everything at
            # or below it is "seen" by fiat, so eviction can never turn a
            # stale retransmit into fresh (reprocessed) traffic.
            self._seen_watermark[message.sender_id] = kept[-2049]
            self._seen_sequences[message.sender_id] = set(kept[-2048:])
            archive = self._update_archive.get(message.sender_id)
            if archive:
                watermark = kept[-2049]
                for sequence in [s for s in archive if s <= watermark]:
                    del archive[sequence]
        return True

    def _screen_duplicate(
        self, src: int, message: GameMessage, *, tracked: bool
    ) -> bool:
        """Handle a message whose sequence was already seen (or evicted).

        ``tracked`` duplicates of a signed ``StateUpdate`` are first
        cross-checked against the archived original: same sequence but
        *different* signed bytes is cryptographic equivocation, the one
        duplicate that is proof of misbehavior rather than an artefact.
        """
        if (
            tracked
            and self.config.byzantine_hardening
            and isinstance(message, StateUpdate)
        ):
            archived = self._update_archive.get(message.sender_id, {}).get(
                message.sequence
            )
            if archived is not None and signable_bytes(archived) != signable_bytes(
                message
            ):
                self._on_equivocation(src, archived, message)
                return False
        self.metrics.count_replayed_message()
        if (
            not tracked
            or self.config.reliable_delivery
            or self.config.proxy_failover
        ):
            # With the robustness layers on, duplicates are an expected
            # artefact of dual-send failover, retransmissions and
            # network duplication — screen them silently instead of
            # convicting an honest sender.  The ack still goes out so a
            # retransmitting peer stops resending a delivered message.
            if (
                self.config.reliable_delivery
                and src != self.player_id
                and isinstance(message, ACKABLE_TYPES)
            ):
                self._send_ack(src, message)
            return False
        self._emit_rating(
            CheatRating(
                verifier_id=self.player_id,
                subject_id=message.sender_id,
                frame=self.current_frame,
                check=CheckKind.RATE,
                rating=10.0,
                confidence=Confidence.PROXY,
                deviation=1.0,
                detail=f"replayed sequence {message.sequence}",
            )
        )
        return False

    # -- Byzantine hardening ----------------------------------------------

    def _count_protocol_drop(self, cause: str) -> None:
        """Fold a protocol-layer rejection into the transport's drop books."""
        if self.protocol_drop is not None:
            self.protocol_drop(cause)

    def _rate_limit_admit(self, src: int) -> bool:
        """Token-bucket admission per sending hop, with bounded quarantine.

        Honest links carry a few messages per frame (epoch bursts stay
        well under the burst allowance), so they never strike; a flooder
        drains its bucket within a couple of frames, accumulates strikes
        and is silenced for ``quarantine_frames`` — bounded, so a false
        positive self-heals instead of becoming an eviction.
        """
        frame = self.current_frame
        until = self._quarantined_until.get(src)
        if until is not None:
            if frame < until:
                return False
            # Quarantine served: fresh bucket, strikes forgiven.
            del self._quarantined_until[src]
            self._rate_strikes.pop(src, None)
            self._rate_buckets.pop(src, None)
        tokens, last = self._rate_buckets.get(
            src, (float(self.config.rate_limit_burst), frame)
        )
        tokens = min(
            float(self.config.rate_limit_burst),
            tokens + (frame - last) * self.config.rate_limit_msgs_per_frame,
        )
        if tokens >= 1.0:
            self._rate_buckets[src] = (tokens - 1.0, frame)
            return True
        self._rate_buckets[src] = (tokens, frame)
        strikes = self._rate_strikes.get(src, 0) + 1
        self._rate_strikes[src] = strikes
        if strikes >= self.config.quarantine_strikes:
            self._quarantined_until[src] = frame + self.config.quarantine_frames
            self._rate_strikes[src] = 0
            self.quarantine_events.append((frame, src))
            self._ctr_quarantines.inc()
            self._emit_rating(
                CheatRating(
                    verifier_id=self.player_id,
                    subject_id=src,
                    frame=frame,
                    check=CheckKind.RATE,
                    rating=8.0,
                    confidence=Confidence.PROXY,
                    deviation=float(strikes),
                    detail="message flood: token bucket exhausted repeatedly",
                )
            )
        return False

    def _on_equivocation(
        self, src: int, archived: StateUpdate, conflict: StateUpdate
    ) -> None:
        """Two validly-signed updates, same sequence, different payloads.

        This is cryptographic proof the *origin* equivocated (no relay can
        forge either signature), so the rating is maximal and the witness
        broadcasts self-certifying evidence that convicts everywhere
        without needing a removal quorum.
        """
        accused = conflict.sender_id
        self._ctr_equivocations.inc()
        self.equivocation_events.append((self.current_frame, accused))
        self._emit_rating(
            CheatRating(
                verifier_id=self.player_id,
                subject_id=accused,
                frame=self.current_frame,
                check=CheckKind.RATE,
                rating=10.0,
                confidence=Confidence.PROXY,
                deviation=1.0,
                detail=(
                    "equivocation: conflicting signed payloads for "
                    f"sequence {conflict.sequence}"
                ),
            )
        )
        if accused in self._evidence_emitted:
            return
        self._evidence_emitted.add(accused)
        evidence = MisbehaviorEvidence(
            sender_id=self.player_id,
            accused_id=accused,
            frame=self.current_frame,
            sequence=self._next_sequence(),
            first=archived,
            second=conflict,
        )
        self._convict_on_evidence(evidence)
        for destination in self.membership.current_roster():
            if destination != self.player_id:
                self._transmit(evidence, destination)

    # repro-mc: commutes[membership] -- convictions are idempotent per subject
    def _on_misbehavior_evidence(
        self, src: int, evidence: MisbehaviorEvidence
    ) -> None:
        if not self.config.byzantine_hardening:
            return
        if not self._evidence_is_valid(evidence):
            # An invalid evidence message is itself an accusation forgery
            # attempt (or corruption); rate the reporter, not the accused.
            self._emit_rating(
                CheatRating(
                    verifier_id=self.player_id,
                    subject_id=evidence.sender_id,
                    frame=self.current_frame,
                    check=CheckKind.RATE,
                    rating=8.0,
                    confidence=Confidence.PROXY,
                    deviation=1.0,
                    detail="misbehavior evidence fails verification",
                )
            )
            return
        self._convict_on_evidence(evidence)

    def _evidence_is_valid(self, evidence: MisbehaviorEvidence) -> bool:
        """Re-verify the self-certifying proof; trust nothing about it."""
        first, second = evidence.first, evidence.second
        if (
            first.sender_id != evidence.accused_id
            or second.sender_id != evidence.accused_id
        ):
            return False
        if evidence.accused_id == self.player_id:
            return False  # nodes do not convict themselves on hearsay
        if first.sequence != second.sequence:
            return False
        if signable_bytes(first) == signable_bytes(second):
            return False  # identical retransmission, not equivocation
        for inner in (first, second):
            if inner.signature is None or not self.signer.verify(
                inner.sender_id, signable_bytes(inner), inner.signature
            ):
                return False
        return True

    def _convict_on_evidence(self, evidence: MisbehaviorEvidence) -> None:
        """Schedule a quorum-free removal backed by verified evidence.

        The due epoch is a pure function of the *evidence* frame, so every
        node that accepts the same evidence schedules the same removal
        epoch and membership views stay in agreement at quiescence.
        """
        due_epoch = (
            self.config.epoch_of_frame(evidence.frame)
            + self.membership.effective_delay_epochs
        )
        if self.membership.convict(evidence.accused_id, due_epoch):
            self._ctr_convictions.inc()
            self._emit_rating(
                CheatRating(
                    verifier_id=self.player_id,
                    subject_id=evidence.accused_id,
                    frame=self.current_frame,
                    check=CheckKind.RATE,
                    rating=10.0,
                    confidence=Confidence.PROXY,
                    deviation=1.0,
                    detail="verified misbehavior evidence (signed equivocation)",
                )
            )

    def _scan_starvation(self, frame: int, epoch: int) -> None:
        """Selective-forwarding suspicion: a peer is dark while its proxy is live.

        If we have not heard *anything* attributable to a subject for
        ``starvation_suspicion_frames`` but the subject's proxy is
        demonstrably alive (heard within one publishing interval), the
        likeliest explanation is the proxy eating the subject's traffic.
        Low-confidence rating only — partitions look the same from here,
        and the defense-burst machinery is what actually protects the
        victim from eviction.
        """
        if frame == 0 or frame % self.config.position_interval_frames != 0:
            return
        for subject in self.membership.current_roster():
            if subject == self.player_id or subject in self.membership.exempt:
                continue
            last = self.membership.last_heard_frame(subject)
            if last is None or frame - last <= self.config.starvation_suspicion_frames:
                continue
            if self.membership.proposal_count(subject) > 0:
                continue  # removal machinery already has the case
            # Blame the proxy that held the subject when he went dark, not
            # the current one: the detection lag spans an epoch boundary,
            # and after rotation the starving proxy is the *previous* hop.
            dark_epoch = self.config.epoch_of_frame(last + 1)
            proxy = self.schedule.proxy_of(subject, dark_epoch)
            if proxy in (self.player_id, subject):
                continue
            proxy_last = self.membership.last_heard_frame(proxy)
            if (
                proxy_last is None
                or frame - proxy_last > self.config.position_interval_frames
            ):
                continue  # proxy not demonstrably alive; could be a partition
            key = (proxy, subject, epoch)
            if key in self._starvation_rated:
                continue
            self._starvation_rated.add(key)
            self.suspicion_events.append((frame, proxy, "starvation"))
            self._emit_rating(
                CheatRating(
                    verifier_id=self.player_id,
                    subject_id=proxy,
                    frame=frame,
                    check=CheckKind.RATE,
                    rating=6.0,
                    confidence=Confidence.OTHER,
                    deviation=float(frame - last),
                    detail=(
                        f"player {subject} dark while its proxy stays live "
                        "(selective forwarding?)"
                    ),
                )
            )

    # -- state updates ----------------------------------------------------

    # repro-mc: commutes[known] -- per-sender LWW merge, frame-stamp guarded
    def _on_state_update(self, src: int, update: StateUpdate) -> None:
        sender = update.sender_id
        if sender == self.player_id:
            return
        i_am_proxy = self._accepts_first_hop_from(sender)
        if src == sender:
            # First hop: only legitimate when I am the proxy (or relaxed mode).
            if i_am_proxy:
                self._proxy_ingest_update(update)
                return
            if not self.config.relax_first_hop:
                # Direct send around the proxy: consistency-cheat attempt.
                self.metrics.count_direct_update_violation()
                self._emit_rating(
                    CheatRating(
                        verifier_id=self.player_id,
                        subject_id=sender,
                        frame=self.current_frame,
                        check=CheckKind.RATE,
                        rating=9.0,
                        confidence=Confidence.PROXY,
                        deviation=1.0,
                        detail="direct state update bypassing proxy",
                    )
                )
                return
        self._consume_state_update(update)

    def _proxy_ingest_update(self, update: StateUpdate) -> None:
        """Proxy side: verify the client's update and fan it out."""
        sender = update.sender_id
        self.membership.heard_from(sender, self.current_frame)
        state = self._client_state(sender)
        state.update_count += 1

        for rating in state.rate.observe(
            self.player_id, sender, update.frame, self.current_frame, Confidence.PROXY
        ):
            self._emit_rating(rating)
            state.suspicion_flags += 1
        position_rating = self.position_verifier.observe(
            self.player_id, update.snapshot, Confidence.PROXY
        )
        if position_rating is not None:
            self._emit_rating(position_rating)
            if position_rating.suspicious:
                state.suspicion_flags += 1
        aim_rating = self.aim_verifier.observe(
            self.player_id, update.snapshot, Confidence.PROXY
        )
        if aim_rating is not None:
            self._emit_rating(aim_rating)
            if aim_rating.suspicious:
                state.suspicion_flags += 1
        if self.action_repetition_verifier is not None:
            replay_rating = self.action_repetition_verifier.observe(
                self.player_id, update.snapshot, Confidence.PROXY
            )
            if replay_rating is not None and replay_rating.suspicious:
                self._emit_rating(replay_rating)
                state.suspicion_flags += 1
        guidance_rating = self.guidance_verifier.observe_position(
            self.player_id, update.snapshot, Confidence.PROXY, calibrate=True
        )
        if guidance_rating is not None:
            self._emit_rating(guidance_rating)

        state.last_snapshot = update.snapshot
        state.remember(update.snapshot)
        self.known[sender] = update.snapshot

        if self.config.relax_first_hop:
            return  # publisher already sent directly; we only verified
        for subscriber in state.table.interest_subscribers(self.current_frame):
            if subscriber not in (sender, self.player_id):
                self._transmit(update, subscriber)
                self.metrics.count_forwarded_message()

    def _consume_state_update(self, update: StateUpdate) -> None:
        """Subscriber side: measure age, refresh view, verify."""
        sender = update.sender_id
        self.membership.heard_from(sender, self.current_frame)
        self._record_age("state", update.frame)
        previous = self.known.get(sender)
        if previous is None or previous.frame <= update.frame:
            self.known[sender] = update.snapshot
        confidence = self._confidence_about(sender)
        rating = self.position_verifier.observe(
            self.player_id, update.snapshot, confidence
        )
        if rating is not None:
            self._emit_rating(rating)
        aim_rating = self.aim_verifier.observe(
            self.player_id, update.snapshot, confidence
        )
        if aim_rating is not None:
            self._emit_rating(aim_rating)
        guidance_rating = self.guidance_verifier.observe_position(
            self.player_id, update.snapshot, confidence, calibrate=True
        )
        if guidance_rating is not None:
            self._emit_rating(guidance_rating)

    # -- guidance ------------------------------------------------------------

    # repro-mc: commutes[known] -- per-sender LWW merge, frame-stamp guarded
    def _on_guidance(self, src: int, message: GuidanceMessage) -> None:
        sender = message.sender_id
        if sender == self.player_id:
            return
        if src == sender and self._accepts_first_hop_from(sender):
            state = self._client_state(sender)
            state.last_snapshot = message.snapshot
            self.known[sender] = message.snapshot
            self.guidance_verifier.observe_guidance(sender, message.prediction)
            if self.config.relax_first_hop:
                return
            for subscriber in state.table.vision_subscribers(self.current_frame):
                if subscriber not in (sender, self.player_id):
                    self._transmit(message, subscriber)
                    self.metrics.count_forwarded_message()
            return
        self.membership.heard_from(sender, self.current_frame)
        self._record_age("guidance", message.frame)
        previous = self.known.get(sender)
        if previous is None or previous.frame <= message.frame:
            self.known[sender] = message.snapshot
        self.guidance_verifier.observe_guidance(sender, message.prediction)

    # -- infrequent position updates ---------------------------------------

    # repro-mc: commutes[known] -- per-sender LWW merge, frame-stamp guarded
    def _on_position_update(self, src: int, message: PositionUpdate) -> None:
        sender = message.sender_id
        if sender == self.player_id:
            return
        if src == sender and self._accepts_first_hop_from(sender):
            # First-hop traffic is itself a heartbeat: the forwarding
            # proxy must not keep silence evidence armed against a client
            # it is actively relaying for.
            self.membership.heard_from(sender, self.current_frame)
            state = self._client_state(sender)
            audience = self._others_audience(sender, state)
            for destination in audience:
                self._transmit(message, destination)
                self.metrics.count_forwarded_message()
            return
        self.membership.heard_from(sender, self.current_frame)
        self._record_age("position", message.frame)
        previous = self.known.get(sender)
        if previous is None:
            self.known[sender] = message.snapshot
        elif previous.frame <= message.frame:
            # Merge: position updates carry only identity/position — keep
            # the richer fields from whatever we knew before.
            self.known[sender] = dataclass_replace(
                previous,
                frame=message.frame,
                position=message.snapshot.position,
                alive=message.snapshot.alive,
            )
        rating = self.position_verifier.observe(
            self.player_id, message.snapshot, self._confidence_about(sender)
        )
        if rating is not None:
            self._emit_rating(rating)
        guidance_rating = self.guidance_verifier.observe_position(
            self.player_id,
            message.snapshot,
            self._confidence_about(sender),
            calibrate=True,
        )
        if guidance_rating is not None:
            self._emit_rating(guidance_rating)

    def _others_audience(self, sender: int, state: _ClientState) -> list[int]:
        """Everyone outside the sender's IS/VS subscriber lists.

        "any player outside the VS and IS belongs to the others set ...
        this subscription type is assigned by default".
        """
        interest = state.table.interest_subscribers(self.current_frame)
        vision = state.table.vision_subscribers(self.current_frame)
        return [
            player
            for player in self.roster
            if player not in (sender, self.player_id)
            and player not in interest
            and player not in vision
        ]

    # -- subscriptions ----------------------------------------------------------

    # repro-mc: commutes[table] -- expiry-refresh inserts; IS-supersedes-VS
    # resolves the same way in either order
    def _on_subscription(self, src: int, request: SubscriptionRequest) -> None:
        sender = request.sender_id
        if request.target_id == sender:
            return
        if src == sender:
            # Stage 1: I should be the sender's proxy — verify, then relay.
            if not self._accepts_first_hop_from(sender):
                return
            self._verify_subscription(request)
            epoch = self.config.epoch_of_frame(self.current_frame)
            try:
                if self.config.proxy_failover:
                    # Relay to the candidate actually serving the target.
                    target_proxy = self._live_proxy_of(
                        request.target_id, epoch, self.current_frame
                    )
                else:
                    target_proxy = self.schedule.proxy_of(
                        request.target_id, epoch
                    )
            except KeyError:
                # Target already evicted from the roster (the game world
                # may lag membership); nothing to relay to.
                return
            if target_proxy == self.player_id:
                self._register_subscription(request)
            else:
                self._transmit(request, target_proxy)
                self.metrics.count_forwarded_message()
            return
        # Stage 2: I should be the target's proxy — record the subscriber.
        if self.config.proxy_failover:
            epoch = self.config.epoch_of_frame(self.current_frame)
            if self._failover_rank(request.target_id, epoch) is not None:
                self._register_subscription(request)
        elif self._is_proxy_of(request.target_id):
            self._register_subscription(request)

    def _verify_subscription(self, request: SubscriptionRequest) -> None:
        # Judge against the subscriber's pose at (or just after) the frame
        # he planned the subscription — he may have spun away since, and
        # honest subscriptions must not be convicted for that.
        state = self._clients.get(request.sender_id)
        subscriber = None
        if state is not None:
            subscriber = state.snapshot_near(request.frame + 1)
        if subscriber is None:
            subscriber = self.known.get(request.sender_id)
        target = self.known.get(request.target_id)
        if subscriber is None or target is None:
            return
        if request.kind == SUB_INTEREST:
            rating = self.subscription_verifier.verify_interest_subscription(
                self.player_id,
                request.frame,
                subscriber,
                target,
                self.known,
                Confidence.PROXY,
            )
        else:
            rating = self.subscription_verifier.verify_vision_subscription(
                self.player_id, request.frame, subscriber, target, Confidence.PROXY
            )
        self._emit_rating(rating)
        if rating.suspicious:
            self._client_state(request.sender_id).suspicion_flags += 1

    def _register_subscription(self, request: SubscriptionRequest) -> None:
        state = self._client_state(request.target_id)
        if request.kind == SUB_INTEREST:
            state.table.add_interest(request.sender_id, self.current_frame)
        else:
            state.table.add_vision(request.sender_id, self.current_frame)

    # -- kill claims -------------------------------------------------------------

    def _on_kill_claim(self, src: int, claim: KillClaim) -> None:
        sender = claim.sender_id
        if src == sender and self._accepts_first_hop_from(sender):
            self._judge_kill_claim(claim, Confidence.PROXY)
            state = self._client_state(sender)
            witnesses = state.table.interest_subscribers(
                self.current_frame
            ) | state.table.vision_subscribers(self.current_frame)
            for witness in witnesses:
                if witness not in (sender, self.player_id):
                    self._transmit(claim, witness)
                    self.metrics.count_forwarded_message()
            return
        self._judge_kill_claim(claim, self._confidence_about(sender))

    def _on_projectile_spawn(self, src: int, spawn: ProjectileSpawn) -> None:
        sender = spawn.sender_id
        if sender == self.player_id:
            return
        if src == sender and self._accepts_first_hop_from(sender):
            rating = self.projectiles.verify_spawn(
                self.player_id,
                spawn.frame,
                sender,
                spawn.weapon,
                spawn.origin,
                spawn.velocity,
                self.known.get(sender),
                Confidence.PROXY,
            )
            self._emit_rating(rating)
            if rating.suspicious:
                self._client_state(sender).suspicion_flags += 1
            self.projectiles.record(
                sender, spawn.frame, spawn.weapon, spawn.origin, spawn.velocity
            )
            # Witnesses (the client's subscribers) also track the object.
            state = self._client_state(sender)
            witnesses = state.table.interest_subscribers(
                self.current_frame
            ) | state.table.vision_subscribers(self.current_frame)
            for witness in witnesses:
                if witness not in (sender, self.player_id):
                    self._transmit(spawn, witness)
                    self.metrics.count_forwarded_message()
            return
        # Witness side: record for later kill-claim corroboration.
        rating = self.projectiles.verify_spawn(
            self.player_id,
            spawn.frame,
            sender,
            spawn.weapon,
            spawn.origin,
            spawn.velocity,
            self.known.get(sender),
            self._confidence_about(sender),
        )
        if rating.suspicious:
            self._emit_rating(rating)
        self.projectiles.record(
            sender, spawn.frame, spawn.weapon, spawn.origin, spawn.velocity
        )

    def _judge_kill_claim(self, claim: KillClaim, confidence: float) -> None:
        from repro.game.weapons import WEAPONS as _WEAPONS

        spec = _WEAPONS.get(claim.weapon)
        if spec is not None and spec.projectile_speed is not None:
            self._deferred_claims.append((self.current_frame + 4, claim, confidence))
            return
        self._judge_kill_claim_now(claim, confidence)

    def _judge_kill_claim_now(self, claim: KillClaim, confidence: float) -> None:
        rating = self.kill_verifier.verify(
            self.player_id,
            claim.frame,
            claim.sender_id,
            claim.weapon,
            self.known.get(claim.sender_id),
            self.known.get(claim.victim_id),
            confidence,
            has_full_object_view=self._accepts_first_hop_from(claim.sender_id),
        )
        self._emit_rating(rating)
        self.recency.record(claim.sender_id, claim.victim_id, claim.frame)

    # -- handoff -------------------------------------------------------------------

    # repro-mc: commutes[known, table] -- frame-guarded snapshot merge plus
    # the same expiry-refresh table inserts as _on_subscription
    def _on_handoff(self, message: HandoffMessage) -> None:
        client_id = message.player_id
        try:
            expected_old_proxy = self.schedule.proxy_of(client_id, message.epoch)
        except KeyError:
            # The client is no longer in my schedule (evicted while this
            # handoff was in flight); a straggler must not crash the node.
            return
        legitimate = message.sender_id == expected_old_proxy
        if not legitimate and self.config.proxy_failover:
            # A stand-in candidate is a verifiable sender too.
            legitimate = self.schedule.verify_route(
                client_id,
                message.epoch,
                message.sender_id,
                self.config.max_failover_attempts,
            )
        if not legitimate:
            self._emit_rating(
                CheatRating(
                    verifier_id=self.player_id,
                    subject_id=message.sender_id,
                    frame=self.current_frame,
                    check=CheckKind.RATE,
                    rating=10.0,
                    confidence=Confidence.PROXY,
                    deviation=1.0,
                    detail="handoff from a node that was not the proxy",
                )
            )
            return
        if self.config.proxy_failover:
            epoch_now = self.config.epoch_of_frame(self.current_frame)
            if self._failover_rank(client_id, epoch_now) is None:
                return
        elif not self._is_proxy_of(client_id):
            return
        state = self._client_state(client_id)
        state.table.import_sets(
            message.interest_subscribers,
            message.vision_subscribers,
            self.current_frame,
        )
        state.predecessor_summaries = message.summaries
        if message.summaries and message.summaries[0].last_snapshot is not None:
            state.last_snapshot = message.summaries[0].last_snapshot
            existing = self.known.get(client_id)
            incoming = message.summaries[0].last_snapshot
            if existing is None or existing.frame <= incoming.frame:
                self.known[client_id] = incoming

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _is_proxy_of(self, player_id: int) -> bool:
        epoch = self.config.epoch_of_frame(self.current_frame)
        try:
            return self.schedule.proxy_of(player_id, epoch) == self.player_id
        except KeyError:
            return False

    def _accepts_first_hop_from(self, player_id: int) -> bool:
        """Was I this player's proxy recently enough to accept his traffic?

        Messages sent in the last frames of an epoch can arrive after the
        renewal; the outgoing proxy still accepts (and forwards) them
        instead of flagging an honest sender.  With failover enabled a
        verifiable stand-in candidate also accepts first-hop traffic.
        """
        epoch = self.config.epoch_of_frame(self.current_frame)
        try:
            if self.schedule.proxy_of(player_id, epoch) == self.player_id:
                return True
            if (
                epoch > 0
                and self.schedule.proxy_of(player_id, epoch - 1) == self.player_id
            ):
                return True
        except KeyError:
            return False
        if self.config.proxy_failover:
            return self._failover_rank(player_id, epoch) is not None
        return False

    def _confidence_about(self, subject_id: int) -> float:
        """My vantage-point confidence about a subject (c_P>c_IS>c_VS>c_O)."""
        if self._is_proxy_of(subject_id):
            return Confidence.PROXY
        sets = self.current_sets
        if sets is not None:
            if subject_id in sets.interest:
                return Confidence.INTEREST
            if subject_id in sets.vision:
                return Confidence.VISION
        return Confidence.OTHER

    def _next_sequence(self) -> int:
        self._sequence += 1
        return self._sequence

    def _transmit(self, message: GameMessage, destination: int) -> None:
        """Sign and send through the behaviour hooks and the transport."""
        if destination == self.player_id:
            self.on_message(self.player_id, message)
            return
        for out_message, out_destination in self.behaviour.filter_outgoing(
            self.current_frame, message, destination
        ):
            self._transmit_unfiltered(out_message, out_destination)

    def _transmit_unfiltered(self, message: GameMessage, destination: int) -> None:
        """Sign and send without re-applying the behaviour's filter."""
        if destination == self.player_id:
            self.on_message(self.player_id, message)
            return
        signed = self._signed(message)
        if self.config.reliable_delivery and isinstance(signed, ACKABLE_TYPES):
            self._register_pending(signed, destination)
        # Charge what actually crosses the wire: the canonical binary
        # frame.  The nominal bit model (message_size_bits) survives as
        # the paper-arithmetic cross-check in the crypto_overhead bench.
        size = encoded_size(signed)
        self._send_raw(self.player_id, destination, signed, size)

    def _signed(self, message: GameMessage) -> GameMessage:
        if message.signature is not None:
            return message
        # Sign with *our own* key: a node claiming another sender_id
        # (spoofing) produces a signature that fails verification at the
        # receiver, which is exactly how the paper defeats spoofing.
        signature = self.signer.sign(self.player_id, signable_bytes(message))
        return type(message)(
            **{
                name: getattr(message, name)
                for name in message.__dataclass_fields__
                if name != "signature"
            },
            signature=signature,
        )

    def _record_age(self, kind: str, stamped_frame: int) -> None:
        age = max(0, self.current_frame - stamped_frame)
        self.metrics.record_age(kind, age)

    def _emit_rating(self, rating: CheatRating) -> None:
        self.metrics.record_rating(rating)
        if self._rating_sink is not None:
            self._rating_sink(rating)
