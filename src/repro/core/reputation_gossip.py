"""Distributed reputation: gossip aggregation of interaction tags.

Section V-B offers two collection points for detection results: "(1) a
centralized game lobby ... or (2) a distributed reputation system".  The
central lobby is :class:`~repro.core.reputation.ReputationBoard`; this
module is the distributed alternative: every player keeps a local
reputation system and periodically gossips digests of his *own*
observations to random peers.  Tags are deduplicated by origin, so
relaying cannot double-count, and the underlying
:class:`~repro.core.reputation.BetaReputation` credibility weighting keeps
bad-mouthing by identified cheaters ineffective — "more elaborate
reputation systems incorporate the notions of confidence and credibility
... resulting in an improved robustness".

The exchange itself is transport-agnostic (tags are tiny, signed records
in a real deployment); :class:`GossipReputationNetwork` drives rounds over
an in-memory peer set, which is what the convergence experiments need.
"""

from __future__ import annotations

from random import Random
from dataclasses import dataclass, field

from typing import Callable

from repro.core.reputation import BetaReputation, InteractionTag

__all__ = ["GossipNode", "GossipReputationNetwork"]


def _tag_key(tag: InteractionTag) -> tuple:
    """Identity of an observation (for exactly-once accounting)."""
    return (tag.reporter_id, tag.subject_id, tag.frame, tag.check, tag.success)


@dataclass
class GossipNode:
    """One player's local reputation state plus his gossip log."""

    node_id: int
    system: BetaReputation = field(default_factory=BetaReputation)
    _log: list[InteractionTag] = field(default_factory=list)
    _seen: set = field(default_factory=set)

    def observe(self, tag: InteractionTag) -> None:
        """Record a first-hand observation (this node is the reporter)."""
        if tag.reporter_id != self.node_id:
            raise ValueError("observe() is for first-hand tags only")
        self._absorb(tag)

    def make_digest(self, limit: int = 64) -> list[InteractionTag]:
        """The most recent known tags to share with a peer."""
        return self._log[-limit:]

    def receive_digest(self, tags: list[InteractionTag]) -> int:
        """Merge a peer's digest; returns how many tags were new."""
        new = 0
        for tag in tags:
            if self._absorb(tag):
                new += 1
        return new

    def _absorb(self, tag: InteractionTag) -> bool:
        key = _tag_key(tag)
        if key in self._seen:
            return False
        self._seen.add(key)
        self._log.append(tag)
        self.system.report(tag)
        return True

    def reputation_of(self, subject_id: int) -> float:
        return self.system.reputation_of(subject_id)

    def banned(self) -> set[int]:
        return self.system.banned()

    @property
    def tags_known(self) -> int:
        return len(self._log)


class GossipReputationNetwork:
    """Drives gossip rounds among a set of nodes."""

    def __init__(self, node_ids: list[int], seed: int = 0,
                 system_factory: Callable[[], BetaReputation] | None = None) -> None:
        if len(node_ids) < 2:
            raise ValueError("gossip needs at least two nodes")
        factory = system_factory or BetaReputation
        self.nodes = {
            node_id: GossipNode(node_id, system=factory())
            for node_id in node_ids
        }
        self.rng = Random(seed)
        self.rounds_run = 0
        self.tags_exchanged = 0

    def node(self, node_id: int) -> GossipNode:
        return self.nodes[node_id]

    def run_round(self, fanout: int = 1, digest_size: int = 64) -> int:
        """One gossip round: every node pushes a digest to ``fanout`` peers."""
        if fanout < 1:
            raise ValueError("fanout must be positive")
        new_total = 0
        ids = sorted(self.nodes)
        for node_id in ids:
            node = self.nodes[node_id]
            peers = [p for p in ids if p != node_id]
            for peer_id in self.rng.sample(peers, min(fanout, len(peers))):
                digest = node.make_digest(digest_size)
                new_total += self.nodes[peer_id].receive_digest(digest)
                self.tags_exchanged += len(digest)
        self.rounds_run += 1
        return new_total

    def run_until_quiet(self, max_rounds: int = 64, fanout: int = 2,
                        digest_size: int = 128) -> int:
        """Gossip until a round spreads nothing new; returns rounds used."""
        for round_index in range(max_rounds):
            if self.run_round(fanout=fanout, digest_size=digest_size) == 0:
                return round_index + 1
        return max_rounds

    # ---- convergence queries ------------------------------------------------

    def ban_agreement(self) -> dict[int, float]:
        """For each ever-banned subject, the fraction of nodes banning him."""
        votes: dict[int, int] = {}
        for node in self.nodes.values():
            for subject in node.banned():
                votes[subject] = votes.get(subject, 0) + 1
        return {
            subject: count / len(self.nodes) for subject, count in votes.items()
        }

    def agreed_bans(self, threshold: float = 0.5) -> set[int]:
        """Subjects banned by at least ``threshold`` of the nodes."""
        return {
            subject
            for subject, fraction in self.ban_agreement().items()
            if fraction >= threshold
        }

    def reputation_spread(self, subject_id: int) -> float:
        """Max disagreement between nodes about one subject's reputation."""
        values = [n.reputation_of(subject_id) for n in self.nodes.values()]
        return max(values) - min(values)
