"""Random, verifiable, dynamic proxy assignment.

Section IV: proxies are **random** (nobody controls who they serve or who
serves them), **verifiable** ("all players in the game can verify each
other's proxy and automatically send to the correct proxy") and **dynamic**
(renewed every proxy period).

The schedule is a pure function of (common seed, roster, epoch): player
``p``'s proxy in epoch ``e`` is chosen by p's verifiable PRNG draw at
counter ``e`` over the eligible pool minus ``p`` himself.  Every node
computes the same schedule with zero communication; :meth:`verify_proxy`
is the check any node can run on any claimed assignment.

The pool can exclude low-resource nodes and weight powerful ones
(Section VI "Upload capacity & Fairness"), still deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import PROXY_PERIOD_FRAMES
from repro.crypto.prng import VerifiablePrng
from repro.obs.registry import MetricsRegistry, get_registry

__all__ = ["ProxySchedule", "ProxyAssignment"]


@dataclass(frozen=True, slots=True)
class ProxyAssignment:
    """One player's proxy for one epoch."""

    player_id: int
    proxy_id: int
    epoch: int


class ProxySchedule:
    """Deterministic proxy schedule over a (possibly changing) roster."""

    def __init__(
        self,
        roster: list[int],
        common_seed: bytes = b"watchmen-session",
        proxy_period_frames: int = PROXY_PERIOD_FRAMES,
        proxy_pool: list[int] | None = None,
        pool_weights: dict[int, int] | None = None,
        infrastructure: list[int] | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if len(roster) < 2:
            raise ValueError("need at least two players for proxying")
        if len(set(roster)) != len(roster):
            raise ValueError("duplicate player ids in roster")
        if proxy_period_frames <= 0:
            raise ValueError("proxy_period_frames must be positive")
        self.roster = sorted(roster)
        self.common_seed = common_seed
        self.proxy_period_frames = proxy_period_frames
        # Infrastructure nodes (hybrid game servers, Section VI) can serve
        # as proxies without being players themselves.
        self.infrastructure = sorted(infrastructure or [])
        if set(self.infrastructure) & set(self.roster):
            raise ValueError("infrastructure ids collide with player ids")
        pool = sorted(proxy_pool) if proxy_pool is not None else list(self.roster)
        unknown = set(pool) - set(self.roster) - set(self.infrastructure)
        if unknown:
            raise ValueError(f"proxy pool contains non-roster ids {sorted(unknown)}")
        if not pool:
            raise ValueError("proxy pool must not be empty")
        # Weighted pool: a node with weight w appears w times (more likely
        # to be drawn, serving multiple players) — the heterogeneity hook.
        weights = pool_weights or {}
        self.pool: list[int] = []
        for node in pool:
            self.pool.extend([node] * max(1, int(weights.get(node, 1))))
        self._prngs: dict[int, VerifiablePrng] = {}
        self._roster_set = set(self.roster)
        # The schedule is a pure function of (seed, roster, epoch), so
        # assignments are memoised; the counters split real PRNG draws
        # from cache hits.
        self._assignments: dict[tuple[int, int], int] = {}
        self._candidates: dict[tuple[int, int, int], int] = {}
        obs = registry if registry is not None else get_registry()
        self._registry = obs
        self._ctr_lookups = obs.counter("proxy.schedule.lookups")
        self._ctr_draws = obs.counter("proxy.schedule.draws")

    # ---- schedule queries -------------------------------------------------

    def epoch_of_frame(self, frame: int) -> int:
        if frame < 0:
            raise ValueError("frame must be non-negative")
        return frame // self.proxy_period_frames

    def proxy_of(self, player_id: int, epoch: int) -> int:
        """The proxy serving ``player_id`` during ``epoch`` (verifiable)."""
        self._ctr_lookups.inc()
        cached = self._assignments.get((player_id, epoch))
        if cached is not None:
            return cached
        if player_id not in self._roster_set:
            raise KeyError(f"unknown player {player_id}")
        if epoch < 0:
            raise ValueError("epoch must be non-negative")
        eligible = [node for node in self.pool if node != player_id]
        if not eligible:
            raise ValueError("no eligible proxy for player")
        prng = self._prngs.get(player_id)
        if prng is None:
            prng = VerifiablePrng(self.common_seed, player_id)
            self._prngs[player_id] = prng
        self._ctr_draws.inc()
        index = prng.below_at(epoch, len(eligible))
        proxy = eligible[index]
        self._assignments[(player_id, epoch)] = proxy
        return proxy

    def proxy_at_frame(self, player_id: int, frame: int) -> int:
        return self.proxy_of(player_id, self.epoch_of_frame(frame))

    def candidate_of(self, player_id: int, epoch: int, attempt: int) -> int:
        """The ``attempt``-th failover candidate for a player's epoch.

        Attempt 0 is the scheduled proxy itself; attempt k is the k-th
        *distinct* node reached by walking forward (cyclically) from the
        PRNG-drawn index over the same eligible pool.  Like the primary
        assignment this is a pure function of (seed, roster, epoch,
        attempt), so when a node fails over after its proxy crashes,
        every other node can verify the replacement route with zero
        communication — the failover stays inside the verifiable
        schedule instead of becoming a free-for-all.
        """
        if attempt < 0:
            raise ValueError("attempt must be non-negative")
        if attempt == 0:
            return self.proxy_of(player_id, epoch)
        cached = self._candidates.get((player_id, epoch, attempt))
        if cached is not None:
            return cached
        if player_id not in self._roster_set:
            raise KeyError(f"unknown player {player_id}")
        if epoch < 0:
            raise ValueError("epoch must be non-negative")
        eligible = [node for node in self.pool if node != player_id]
        if not eligible:
            raise ValueError("no eligible proxy for player")
        prng = self._prngs.get(player_id)
        if prng is None:
            prng = VerifiablePrng(self.common_seed, player_id)
            self._prngs[player_id] = prng
        index = prng.below_at(epoch, len(eligible))
        distinct: list[int] = []
        for node in eligible[index:] + eligible[:index]:
            if node not in distinct:
                distinct.append(node)
        candidate = distinct[attempt % len(distinct)]
        self._candidates[(player_id, epoch, attempt)] = candidate
        return candidate

    def clients_of(self, proxy_id: int, epoch: int) -> list[int]:
        """All players served by ``proxy_id`` during ``epoch``."""
        return [
            player
            for player in self.roster
            if self.proxy_of(player, epoch) == proxy_id
        ]

    def assignment_table(self, epoch: int) -> list[ProxyAssignment]:
        return [
            ProxyAssignment(player, self.proxy_of(player, epoch), epoch)
            for player in self.roster
        ]

    # ---- verification --------------------------------------------------------

    # repro-taint: sanitizer
    def verify_proxy(self, player_id: int, epoch: int, claimed_proxy: int) -> bool:
        """Any node's check that a claimed assignment matches the schedule."""
        try:
            return self.proxy_of(player_id, epoch) == claimed_proxy
        except (KeyError, ValueError):
            return False

    def verify_route(  # repro-taint: sanitizer
        self, player_id: int, epoch: int, claimed_proxy: int, max_attempts: int
    ) -> bool:
        """Check a claimed (possibly failed-over) proxy against the schedule.

        True when ``claimed_proxy`` is the scheduled proxy or one of the
        first ``max_attempts`` failover candidates — the bounded set any
        honest node may legitimately route through after crashes.
        """
        try:
            return any(
                self.candidate_of(player_id, epoch, attempt) == claimed_proxy
                for attempt in range(max_attempts + 1)
            )
        except (KeyError, ValueError):
            return False

    # ---- churn ----------------------------------------------------------------

    def without_players(self, departed: set[int]) -> "ProxySchedule":
        """A new schedule after departed players are removed (next round).

        "These nodes are removed in the next round, through an agreement
        protocol, from the proxy pool."  Roster edits take effect at epoch
        boundaries; callers swap schedules then.
        """
        remaining = [p for p in self.roster if p not in departed]
        remaining_pool = sorted({p for p in self.pool if p not in departed})
        return ProxySchedule(
            roster=remaining,
            common_seed=self.common_seed,
            proxy_period_frames=self.proxy_period_frames,
            proxy_pool=remaining_pool or None,
            infrastructure=self.infrastructure or None,
            registry=self._registry,
        )

    # ---- collusion statistics (Figure 5 / in-text 94 %) -----------------------

    def honest_proxy_probability(self, num_colluders: int) -> float:
        """P[a cheater's proxy is honest] with ``num_colluders`` colluders.

        With uniform assignment over n−1 candidates and k−1 *other*
        colluders eligible, the paper quotes 1 − 3/47 ≈ 94 % for k=4 … they
        phrase it as "colludes with 3 other cheaters ... 1 − 3/47".
        """
        n = len(set(self.roster))
        if not 0 <= num_colluders <= n:
            raise ValueError("num_colluders out of range")
        others = max(0, num_colluders - 1)
        return 1.0 - others / (n - 1)
