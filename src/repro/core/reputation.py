"""Reputation & punishment (Section V-B).

"Because the detection system has false positives ... a single detection
of cheating does not result in banning of players.  Instead, each player
tags the interactions he has with other players as successful ... or as
failed, and this information is fed to a reputation system."

Watchmen treats the reputation backend as pluggable; this module provides
the interface plus two reference implementations:

- :class:`ThresholdReputation` — "in its simplest form, a reputation
  system decides to ban a node if the proportion of acceptable
  interactions of a player drops below a given threshold";
- :class:`BetaReputation` — a confidence/credibility-weighted Beta system
  in the spirit of the more elaborate systems the paper cites: reports are
  weighted by the reporter's confidence *and* the reporter's own current
  reputation (credibility), which blunts bad-mouthing by cheaters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.core.verification import CheatRating

__all__ = [
    "InteractionTag",
    "ReputationSystem",
    "ThresholdReputation",
    "BetaReputation",
    "ReputationBoard",
]

#: A rating at or above this is treated as a failed (suspicious) interaction.
SUSPICION_RATING_THRESHOLD = 6.0
#: Low-confidence reports are ignored entirely.
MIN_REPORT_CONFIDENCE = 0.25


@dataclass(frozen=True, slots=True)
class InteractionTag:
    """One success/failure report about a subject from a reporter."""

    reporter_id: int
    subject_id: int
    frame: int
    success: bool
    confidence: float
    check: str = ""

    @staticmethod
    def from_rating(rating: CheatRating) -> "InteractionTag":
        return InteractionTag(
            reporter_id=rating.verifier_id,
            subject_id=rating.subject_id,
            frame=rating.frame,
            success=rating.rating < SUSPICION_RATING_THRESHOLD,
            confidence=rating.confidence,
            check=rating.check,
        )


class ReputationSystem(Protocol):
    """The pluggable interface the Watchmen detection layer feeds."""

    def report(self, tag: InteractionTag) -> None: ...

    def reputation_of(self, subject_id: int) -> float: ...

    def banned(self) -> set[int]: ...


class ThresholdReputation:
    """Ban when the acceptable-interaction proportion drops below a threshold.

    ``min_reports`` prevents banning on a handful of (possibly false
    positive) reports; the threshold is "set based on the success and false
    positive rates of the detection system".
    """

    def __init__(self, ban_threshold: float = 0.85, min_reports: int = 20) -> None:
        if not 0.0 < ban_threshold <= 1.0:
            raise ValueError("ban_threshold must be in (0, 1]")
        self.ban_threshold = ban_threshold
        self.min_reports = min_reports
        self._good: dict[int, float] = {}
        self._bad: dict[int, float] = {}
        self._count: dict[int, int] = {}

    def report(self, tag: InteractionTag) -> None:
        if tag.confidence < MIN_REPORT_CONFIDENCE:
            return
        weight = tag.confidence
        if tag.success:
            self._good[tag.subject_id] = self._good.get(tag.subject_id, 0.0) + weight
        else:
            self._bad[tag.subject_id] = self._bad.get(tag.subject_id, 0.0) + weight
        self._count[tag.subject_id] = self._count.get(tag.subject_id, 0) + 1

    def reputation_of(self, subject_id: int) -> float:
        good = self._good.get(subject_id, 0.0)
        bad = self._bad.get(subject_id, 0.0)
        total = good + bad
        return good / total if total > 0 else 1.0

    def banned(self) -> set[int]:
        return {
            subject
            for subject, count in self._count.items()
            if count >= self.min_reports
            and self.reputation_of(subject) < self.ban_threshold
        }


class BetaReputation:
    """Beta(α, β) reputation with reporter-credibility weighting.

    Each report adds ``confidence × credibility(reporter)`` to α (success)
    or β (failure).  Credibility is the reporter's own current expected
    reputation, so identified cheaters cannot effectively bad-mouth honest
    players ("prevent bad mouthing ... resulting in an improved
    robustness").
    """

    def __init__(
        self,
        ban_threshold: float = 0.80,
        min_evidence: float = 10.0,
        prior: float = 2.0,
    ) -> None:
        if not 0.0 < ban_threshold <= 1.0:
            raise ValueError("ban_threshold must be in (0, 1]")
        self.ban_threshold = ban_threshold
        self.min_evidence = min_evidence
        self.prior = prior
        self._alpha: dict[int, float] = {}
        self._beta: dict[int, float] = {}

    def report(self, tag: InteractionTag) -> None:
        if tag.confidence < MIN_REPORT_CONFIDENCE:
            return
        credibility = self.reputation_of(tag.reporter_id)
        weight = tag.confidence * credibility
        if tag.success:
            self._alpha[tag.subject_id] = self._alpha.get(tag.subject_id, 0.0) + weight
        else:
            self._beta[tag.subject_id] = self._beta.get(tag.subject_id, 0.0) + weight

    def reputation_of(self, subject_id: int) -> float:
        alpha = self._alpha.get(subject_id, 0.0) + self.prior
        beta = self._beta.get(subject_id, 0.0) + self.prior * 0.25
        return alpha / (alpha + beta)

    def evidence_of(self, subject_id: int) -> float:
        return self._alpha.get(subject_id, 0.0) + self._beta.get(subject_id, 0.0)

    def banned(self) -> set[int]:
        return {
            subject
            for subject in set(self._alpha) | set(self._beta)
            if self.evidence_of(subject) >= self.min_evidence
            and self.reputation_of(subject) < self.ban_threshold
        }


@dataclass
class ReputationBoard:
    """A collection point: ratings in, tags out, ban list maintained.

    Stands in for "a centralized game lobby that manages access and logins
    and can thus ban the players" — the simplest aggregation model the
    paper describes.
    """

    system: ThresholdReputation | BetaReputation = field(
        default_factory=ThresholdReputation
    )
    tags_seen: int = 0

    def submit_rating(self, rating: CheatRating) -> None:
        self.system.report(InteractionTag.from_rating(rating))
        self.tags_seen += 1

    def submit_tag(self, tag: InteractionTag) -> None:
        self.system.report(tag)
        self.tags_seen += 1

    def reputation_of(self, subject_id: int) -> float:
        return self.system.reputation_of(subject_id)

    def banned(self) -> set[int]:
        return self.system.banned()
