"""Subscription management: the outgoing and incoming halves.

Outgoing (:class:`SubscriptionPlanner`, run by every player): classify all
known avatars into IS/VS/Others from *local* knowledge, apply the latency
optimizations of Section VI — **prediction ahead** (subscriptions for the
coming frame are computed from current angular/physical momentum and sent
early) and **subscriber retention** (a subscription stays valid for a
timeout window, so only *new* subscriptions travel) — and emit the
subscription deltas to send.

Incoming (:class:`SubscriberTable`, run by every proxy for each client):
the list of who receives which update class about the client, with expiry.
The proxy sends updates directly to these subscribers; the client himself
never learns the list.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import WatchmenConfig
from repro.game.avatar import AvatarSnapshot
from repro.game.gamemap import GameMap
from repro.game.interest import InteractionRecency, LosCache, compute_sets

__all__ = ["SubscriptionPlanner", "SubscriberTable", "PlannedSubscriptions"]


@dataclass(frozen=True, slots=True)
class PlannedSubscriptions:
    """The planner's output for one frame."""

    frame: int
    interest: frozenset[int]  # full desired IS
    vision: frozenset[int]  # full desired VS
    new_interest: frozenset[int]  # deltas that must be sent this frame
    new_vision: frozenset[int]


class SubscriptionPlanner:
    """One player's subscription logic over his local world view."""

    def __init__(
        self,
        player_id: int,
        game_map: GameMap,
        config: WatchmenConfig,
        recency: InteractionRecency | None = None,
        los: LosCache | None = None,
    ) -> None:
        self.player_id = player_id
        self.game_map = game_map
        self.config = config
        self.recency = recency or InteractionRecency()
        #: Optional per-frame LOS cache shared with the other planners of a
        #: session (the session clears it each frame).  Purely a speedup:
        #: results are identical with or without it.
        self.los = los
        self._active_interest: dict[int, int] = {}  # target -> expiry frame
        self._active_vision: dict[int, int] = {}

    def plan(
        self,
        frame: int,
        me: AvatarSnapshot,
        known: dict[int, AvatarSnapshot],
    ) -> PlannedSubscriptions:
        """Compute this frame's desired sets and the subscription deltas."""
        observer = self._predicted_self(frame, me) if self.config.predict_ahead else me
        sets = compute_sets(
            observer,
            known,
            self.game_map,
            frame,
            self.config.interest,
            self.recency,
            los=self.los,
        )

        retention = self.config.subscription_retention_frames
        expiry = frame + retention
        new_interest = set()
        new_vision = set()
        for target in sets.interest:
            if self._active_interest.get(target, -1) <= frame:
                new_interest.add(target)
            self._active_interest[target] = expiry
        for target in sets.vision:
            if self._active_vision.get(target, -1) <= frame:
                new_vision.add(target)
            self._active_vision[target] = expiry

        # Retention: a target that left the desired set keeps its
        # subscription until the timeout lapses (no explicit unsubscribe
        # traffic), then silently expires on the proxy side too.
        self._expire(frame)
        return PlannedSubscriptions(
            frame=frame,
            interest=sets.interest,
            vision=sets.vision,
            new_interest=frozenset(new_interest),
            new_vision=frozenset(new_vision),
        )

    def _expire(self, frame: int) -> None:
        for table in (self._active_interest, self._active_vision):
            stale = [t for t, exp in table.items() if exp <= frame]
            for target in stale:
                del table[target]

    def _predicted_self(self, frame: int, me: AvatarSnapshot) -> AvatarSnapshot:
        """Extrapolate own pose one frame ahead (prediction-ahead sending).

        "In each frame players calculate their subscriptions for the coming
        frame and send the subscriptions ahead of time ... using current
        angular and physical momentum."
        """
        dt = self.config.frame_seconds
        predicted_position = me.position + me.velocity * dt
        return AvatarSnapshot(
            player_id=me.player_id,
            frame=frame,
            position=predicted_position,
            velocity=me.velocity,
            yaw=me.yaw,
            health=me.health,
            armor=me.armor,
            weapon=me.weapon,
            ammo=me.ammo,
            alive=me.alive,
        )

    def active_interest(self) -> frozenset[int]:
        return frozenset(self._active_interest)

    def active_vision(self) -> frozenset[int]:
        return frozenset(self._active_vision)


@dataclass
class SubscriberTable:
    """Proxy-side subscriber lists for one client, with expiry."""

    client_id: int
    retention_frames: int
    _interest: dict[int, int] = field(default_factory=dict)  # subscriber -> expiry
    _vision: dict[int, int] = field(default_factory=dict)

    def add_interest(self, subscriber_id: int, frame: int) -> None:
        if subscriber_id == self.client_id:
            raise ValueError("a player cannot subscribe to himself")
        self._interest[subscriber_id] = frame + self.retention_frames
        # An IS subscription supersedes a VS one (IS members leave the VS).
        self._vision.pop(subscriber_id, None)

    def add_vision(self, subscriber_id: int, frame: int) -> None:
        if subscriber_id == self.client_id:
            raise ValueError("a player cannot subscribe to himself")
        if subscriber_id in self._interest:
            # Keep the stronger subscription; it will expire on its own.
            return
        self._vision[subscriber_id] = frame + self.retention_frames

    def expire(self, frame: int) -> None:
        for table in (self._interest, self._vision):
            stale = [s for s, exp in table.items() if exp <= frame]
            for subscriber in stale:
                del table[subscriber]

    def interest_subscribers(self, frame: int) -> frozenset[int]:
        return frozenset(s for s, exp in self._interest.items() if exp > frame)

    def vision_subscribers(self, frame: int) -> frozenset[int]:
        return frozenset(s for s, exp in self._vision.items() if exp > frame)

    # ---- handoff ----------------------------------------------------------

    def export_sets(self, frame: int) -> tuple[frozenset[int], frozenset[int]]:
        return self.interest_subscribers(frame), self.vision_subscribers(frame)

    def import_sets(
        self,
        interest: frozenset[int],
        vision: frozenset[int],
        frame: int,
    ) -> None:
        """Install subscriber lists received in a handoff message."""
        for subscriber in interest:
            if subscriber != self.client_id:
                self._interest[subscriber] = frame + self.retention_frames
        for subscriber in vision:
            if subscriber != self.client_id and subscriber not in self._interest:
                self._vision[subscriber] = frame + self.retention_frames
