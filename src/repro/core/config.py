"""Central configuration for the Watchmen protocol.

All paper-given constants live here with their provenance:

- 50 ms frames (Quake III event loop);
- frequent IS updates every frame, guidance/position updates every second;
- proxy renewal "every couple of seconds" — 40 frames = 2 s by default;
- handoff follow-up two predecessors deep;
- IS of size 5, ±60° vision cone (slack-enlarged);
- ~100-bit signatures, ~700-bit average state updates;
- 150 ms tolerable latency ⇒ updates older than 3 frames count as loss.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.game.interest import InterestConfig

__all__ = ["WatchmenConfig"]


@dataclass(frozen=True)
class WatchmenConfig:
    """Tuning knobs of a Watchmen session."""

    frame_seconds: float = 0.05
    # -- dissemination rates (paper Section III-A) --------------------------
    frequent_interval_frames: int = 1  # IS: every 50 ms
    guidance_interval_frames: int = 20  # VS: one per second
    position_interval_frames: int = 20  # Others: typically every second
    guidance_horizon_frames: int = 20  # DR prediction validity
    guidance_check_frames: int = 8  # verification window for guidance
    # -- proxy architecture (Sections III-B, IV) -----------------------------
    proxy_period_frames: int = 40  # renewal "every couple of seconds"
    handoff_depth: int = 2  # follow-up on two previous proxies
    common_seed: bytes = b"watchmen-session"
    # -- subscriptions (Section VI latency optimizations) --------------------
    subscription_retention_frames: int = 40  # keep subs alive w/o refresh
    predict_ahead: bool = True  # subscribe for the *coming* frame
    relax_first_hop: bool = False  # send updates directly (lower security)
    # -- interest management --------------------------------------------------
    interest: InterestConfig = field(default_factory=InterestConfig)
    # -- wire-size model (Section IV: 100-bit signatures, 700-bit updates) ---
    signature_bits: int = 100
    state_update_bits: int = 700  # full (non-delta) state update payload
    #: Delta coding ("updates show high temporal similarities and can be
    #: delta-coded, only including the differences"): a delta update pays a
    #: small base plus per-changed-field costs.
    delta_base_bits: int = 64
    delta_field_bits: dict = None  # type: ignore[assignment]
    position_update_bits: int = 220
    guidance_bits: int = 420
    subscription_bits: int = 160
    handoff_bits_per_entry: int = 500
    header_bits: int = 224  # UDP/IP + game header
    # -- verification depth ----------------------------------------------------
    #: Enable the high-cost action-repetition replay check at proxies
    #: (Section V-A's "more accuracy but higher costs" option).
    action_repetition: bool = False
    # -- responsiveness accounting -------------------------------------------
    max_useful_age_frames: int = 3  # ≥150 ms counts as loss (Quake bound)

    _DELTA_FIELD_BITS = {
        "position": 96,
        "velocity": 96,
        "yaw": 32,
        "health": 16,
        "armor": 16,
        "weapon": 24,
        "ammo": 16,
        "alive": 8,
    }

    def __post_init__(self) -> None:
        if self.delta_field_bits is None:
            object.__setattr__(
                self, "delta_field_bits", dict(self._DELTA_FIELD_BITS)
            )
        if self.frame_seconds <= 0:
            raise ValueError("frame_seconds must be positive")
        if self.proxy_period_frames <= 0:
            raise ValueError("proxy_period_frames must be positive")
        if self.frequent_interval_frames <= 0:
            raise ValueError("frequent_interval_frames must be positive")
        if self.guidance_interval_frames <= 0:
            raise ValueError("guidance_interval_frames must be positive")
        if self.position_interval_frames <= 0:
            raise ValueError("position_interval_frames must be positive")
        if self.handoff_depth < 0:
            raise ValueError("handoff_depth must be non-negative")
        if self.signature_bits <= 0 or self.state_update_bits <= 0:
            raise ValueError("wire sizes must be positive")

    def epoch_of_frame(self, frame: int) -> int:
        """The proxy epoch a frame belongs to."""
        if frame < 0:
            raise ValueError("frame must be non-negative")
        return frame // self.proxy_period_frames
