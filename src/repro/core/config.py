"""Central configuration for the Watchmen protocol.

All paper-given constants live here with their provenance:

- 50 ms frames (Quake III event loop);
- frequent IS updates every frame, guidance/position updates every second;
- proxy renewal "every couple of seconds" — 40 frames = 2 s by default;
- handoff follow-up two predecessors deep;
- IS of size 5, ±60° vision cone (slack-enlarged);
- ~100-bit signatures, ~700-bit average state updates;
- 150 ms tolerable latency ⇒ updates older than 3 frames count as loss.

The module-level ``Final`` names below are the single source of truth for
these numbers; other modules must import them rather than re-state the
literals (enforced by lint rule C601).  This module is an import leaf —
it depends on the stdlib only — so any module in ``repro.{core,game,net}``
can import it without creating a package cycle (``repro.core.__init__``
resolves its re-exports lazily for the same reason).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Final

if TYPE_CHECKING:
    from repro.game.interest import InterestConfig

__all__ = [
    "FRAME_SECONDS",
    "FRAMES_PER_SECOND",
    "FREQUENT_INTERVAL_FRAMES",
    "PROXY_PERIOD_FRAMES",
    "HANDOFF_DEPTH",
    "INTEREST_SET_SIZE",
    "VISION_HALF_ANGLE",
    "VISION_SLACK",
    "SIGNATURE_BITS",
    "STATE_UPDATE_BITS",
    "MAX_USEFUL_AGE_FRAMES",
    "PROXY_SILENCE_THRESHOLD_FRAMES",
    "MAX_FAILOVER_ATTEMPTS",
    "ACK_RETRY_BASE_FRAMES",
    "ACK_RETRY_MAX_BACKOFF_FRAMES",
    "ACK_RETRY_MAX_ATTEMPTS",
    "MEMBERSHIP_SILENCE_FRAMES",
    "STALE_VIEW_AGE_FRAMES",
    "WatchmenConfig",
]

#: 50 ms frame — the Quake III event-loop period (Section II).
FRAME_SECONDS: Final[float] = 0.05

#: Frames per wall-clock second; the 1 Hz dissemination tiers (guidance,
#: position-only) fire once per this many frames (Section III-A).
FRAMES_PER_SECOND: Final[int] = 20

#: IS tier: a frequent update every frame (50 ms).
FREQUENT_INTERVAL_FRAMES: Final[int] = 1

#: Proxy renewal "every couple of seconds" — 40 frames = 2 s (Section IV).
PROXY_PERIOD_FRAMES: Final[int] = 40

#: Handoff follow-up depth: two previous proxies (Section IV).
HANDOFF_DEPTH: Final[int] = 2

#: "the size of the IS can be fixed (e.g., 5)" (Section III-A).
INTEREST_SET_SIZE: Final[int] = 5

#: Quake III ±60° vision cone half-angle (Section III-A, Figure 2).
VISION_HALF_ANGLE: Final[float] = math.radians(60.0)

#: Cone enlargement so rapid spins do not miss avatars (Section III-A).
VISION_SLACK: Final[float] = math.radians(15.0)

#: ~100-bit lightweight signatures (Section IV).
SIGNATURE_BITS: Final[int] = 100

#: ~700-bit average full (non-delta) state update (Section IV).
STATE_UPDATE_BITS: Final[int] = 700

#: 150 ms tolerable latency ⇒ updates older than 3 frames count as loss.
MAX_USEFUL_AGE_FRAMES: Final[int] = 3

# -- robustness (graceful degradation under crashes / partitions) ----------

#: Client-side proxy-death detection: if a proxy's own publisher heartbeat
#: (its 1 Hz position updates double as liveness beacons, Section VI) has
#: been silent this long, the node presumes it crashed and fails over.
#: Must sit above one position-update interval (20 frames, so one lost
#: heartbeat is tolerated) and below the 60-frame membership silence
#: threshold, so failover always precedes eviction.
PROXY_SILENCE_THRESHOLD_FRAMES: Final[int] = 30

#: Bound on the failover walk along the verifiable candidate schedule
#: (candidate 0 is the scheduled proxy itself).
MAX_FAILOVER_ATTEMPTS: Final[int] = 3

#: Reliable-delivery retry ladder for the critical low-rate messages:
#: first retry after this many frames, doubling per attempt ...
ACK_RETRY_BASE_FRAMES: Final[int] = 4

#: ... capped at this backoff (frames) ...
ACK_RETRY_MAX_BACKOFF_FRAMES: Final[int] = 32

#: ... and abandoned after this many retransmissions.
ACK_RETRY_MAX_ATTEMPTS: Final[int] = 4

#: Membership silence threshold: a peer unheard-from for this many frames
#: becomes eligible for a removal proposal (three 1 Hz heartbeat periods;
#: Section VI).  Must sit above PROXY_SILENCE_THRESHOLD_FRAMES so client
#: failover always precedes eviction.
MEMBERSHIP_SILENCE_FRAMES: Final[int] = 60

#: A remote view older than two 1 Hz heartbeat periods cannot be explained
#: by the dissemination tiers — the publisher's path is black-holed.  The
#: chaos harness samples this per (observer, subject) pair to measure
#: staleness during/after an injected fault.
STALE_VIEW_AGE_FRAMES: Final[int] = 2 * FRAMES_PER_SECOND


def _default_interest() -> "InterestConfig":
    # Imported lazily so this module stays an import leaf (game.interest
    # itself imports the vision-cone constants from here).
    from repro.game.interest import InterestConfig

    return InterestConfig()


@dataclass(frozen=True)
class WatchmenConfig:
    """Tuning knobs of a Watchmen session."""

    frame_seconds: float = FRAME_SECONDS
    # -- dissemination rates (paper Section III-A) --------------------------
    frequent_interval_frames: int = FREQUENT_INTERVAL_FRAMES  # IS: every 50 ms
    guidance_interval_frames: int = FRAMES_PER_SECOND  # VS: one per second
    position_interval_frames: int = FRAMES_PER_SECOND  # Others: every second
    guidance_horizon_frames: int = FRAMES_PER_SECOND  # DR prediction validity
    guidance_check_frames: int = 8  # verification window for guidance
    #: Publish a full keyframe StateUpdate (resetting delta coding) once a
    #: second even when deltas would do.
    keyframe_interval_frames: int = FRAMES_PER_SECOND
    # -- proxy architecture (Sections III-B, IV) -----------------------------
    proxy_period_frames: int = PROXY_PERIOD_FRAMES
    handoff_depth: int = HANDOFF_DEPTH  # follow-up on two previous proxies
    common_seed: bytes = b"watchmen-session"
    # -- subscriptions (Section VI latency optimizations) --------------------
    subscription_retention_frames: int = PROXY_PERIOD_FRAMES  # keep subs alive
    predict_ahead: bool = True  # subscribe for the *coming* frame
    relax_first_hop: bool = False  # send updates directly (lower security)
    # -- interest management --------------------------------------------------
    interest: InterestConfig = field(default_factory=_default_interest)
    # -- wire-size model (Section IV: 100-bit signatures, 700-bit updates) ---
    signature_bits: int = SIGNATURE_BITS
    state_update_bits: int = STATE_UPDATE_BITS  # full state update payload
    #: Delta coding ("updates show high temporal similarities and can be
    #: delta-coded, only including the differences"): a delta update pays a
    #: small base plus per-changed-field costs.
    delta_base_bits: int = 64
    delta_field_bits: dict = None  # type: ignore[assignment]
    position_update_bits: int = 220
    guidance_bits: int = 420
    subscription_bits: int = 160
    handoff_bits_per_entry: int = 500
    header_bits: int = 224  # UDP/IP + game header
    # -- verification depth ----------------------------------------------------
    #: Enable the high-cost action-repetition replay check at proxies
    #: (Section V-A's "more accuracy but higher costs" option).
    action_repetition: bool = False
    # -- robustness (repro.faults; both gates default OFF so fault-free ------
    # -- runs stay bit-identical to the ungated protocol) --------------------
    #: Fail over to the next verifiable candidate proxy when the scheduled
    #: one stops heartbeating (changes traffic, hence the RNG stream).
    proxy_failover: bool = False
    #: Ack/retry (capped exponential backoff) for the critical low-rate
    #: messages; state updates stay fire-and-forget per the paper.
    reliable_delivery: bool = False
    proxy_silence_threshold_frames: int = PROXY_SILENCE_THRESHOLD_FRAMES
    max_failover_attempts: int = MAX_FAILOVER_ATTEMPTS
    ack_retry_base_frames: int = ACK_RETRY_BASE_FRAMES
    ack_retry_max_backoff_frames: int = ACK_RETRY_MAX_BACKOFF_FRAMES
    ack_retry_max_attempts: int = ACK_RETRY_MAX_ATTEMPTS
    #: Frames of silence before a peer may be proposed for removal.  The
    #: model checker shrinks this (together with ``proxy_period_frames``)
    #: so eviction rounds fit inside a bounded-exploration horizon.
    membership_silence_frames: int = MEMBERSHIP_SILENCE_FRAMES
    #: While under a removal challenge a live player heartbeats directly
    #: to the roster (bypassing its possibly-dead proxy) at this cadence.
    #: Always on: it costs nothing until someone is actually accused.
    defense_interval_frames: int = 5
    # -- responsiveness accounting -------------------------------------------
    max_useful_age_frames: int = MAX_USEFUL_AGE_FRAMES  # ≥150 ms counts as loss

    _DELTA_FIELD_BITS = {
        "position": 96,
        "velocity": 96,
        "yaw": 32,
        "health": 16,
        "armor": 16,
        "weapon": 24,
        "ammo": 16,
        "alive": 8,
    }

    def __post_init__(self) -> None:
        if self.delta_field_bits is None:
            object.__setattr__(
                self, "delta_field_bits", dict(self._DELTA_FIELD_BITS)
            )
        if self.frame_seconds <= 0:
            raise ValueError("frame_seconds must be positive")
        if self.proxy_period_frames <= 0:
            raise ValueError("proxy_period_frames must be positive")
        if self.frequent_interval_frames <= 0:
            raise ValueError("frequent_interval_frames must be positive")
        if self.guidance_interval_frames <= 0:
            raise ValueError("guidance_interval_frames must be positive")
        if self.position_interval_frames <= 0:
            raise ValueError("position_interval_frames must be positive")
        if self.keyframe_interval_frames <= 0:
            raise ValueError("keyframe_interval_frames must be positive")
        if self.handoff_depth < 0:
            raise ValueError("handoff_depth must be non-negative")
        if self.signature_bits <= 0 or self.state_update_bits <= 0:
            raise ValueError("wire sizes must be positive")
        if self.proxy_silence_threshold_frames <= 0:
            raise ValueError("proxy_silence_threshold_frames must be positive")
        if self.max_failover_attempts < 1:
            raise ValueError("max_failover_attempts must be at least 1")
        if self.defense_interval_frames <= 0:
            raise ValueError("defense_interval_frames must be positive")
        if self.ack_retry_base_frames <= 0:
            raise ValueError("ack_retry_base_frames must be positive")
        if self.ack_retry_max_backoff_frames < self.ack_retry_base_frames:
            raise ValueError("ack_retry_max_backoff_frames below the base delay")
        if self.ack_retry_max_attempts < 0:
            raise ValueError("ack_retry_max_attempts must be non-negative")
        if self.membership_silence_frames <= self.proxy_silence_threshold_frames:
            raise ValueError(
                "membership_silence_frames must exceed the proxy silence "
                "threshold so failover precedes eviction"
            )

    def epoch_of_frame(self, frame: int) -> int:
        """The proxy epoch a frame belongs to."""
        if frame < 0:
            raise ValueError("frame must be non-negative")
        return frame // self.proxy_period_frames
