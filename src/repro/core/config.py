"""Central configuration for the Watchmen protocol.

All paper-given constants live here with their provenance:

- 50 ms frames (Quake III event loop);
- frequent IS updates every frame, guidance/position updates every second;
- proxy renewal "every couple of seconds" — 40 frames = 2 s by default;
- handoff follow-up two predecessors deep;
- IS of size 5, ±60° vision cone (slack-enlarged);
- ~100-bit signatures, ~700-bit average state updates;
- 150 ms tolerable latency ⇒ updates older than 3 frames count as loss.

The module-level ``Final`` names below are the single source of truth for
these numbers; other modules must import them rather than re-state the
literals (enforced by lint rule C601).  This module is an import leaf —
it depends on the stdlib only — so any module in ``repro.{core,game,net}``
can import it without creating a package cycle (``repro.core.__init__``
resolves its re-exports lazily for the same reason).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Final

if TYPE_CHECKING:
    from repro.game.interest import InterestConfig

__all__ = [
    "FRAME_SECONDS",
    "FRAMES_PER_SECOND",
    "FREQUENT_INTERVAL_FRAMES",
    "PROXY_PERIOD_FRAMES",
    "HANDOFF_DEPTH",
    "INTEREST_SET_SIZE",
    "VISION_HALF_ANGLE",
    "VISION_SLACK",
    "SIGNATURE_BITS",
    "STATE_UPDATE_BITS",
    "MAX_USEFUL_AGE_FRAMES",
    "PROXY_SILENCE_THRESHOLD_FRAMES",
    "MAX_FAILOVER_ATTEMPTS",
    "ACK_RETRY_BASE_FRAMES",
    "ACK_RETRY_MAX_BACKOFF_FRAMES",
    "ACK_RETRY_MAX_ATTEMPTS",
    "MEMBERSHIP_SILENCE_FRAMES",
    "STALE_VIEW_AGE_FRAMES",
    "BYZANTINE_RATE_MSGS_PER_FRAME",
    "BYZANTINE_RATE_BURST",
    "BYZANTINE_QUARANTINE_STRIKES",
    "BYZANTINE_QUARANTINE_FRAMES",
    "BYZANTINE_STARVATION_FRAMES",
    "WatchmenConfig",
]

#: 50 ms frame — the Quake III event-loop period (Section II).
FRAME_SECONDS: Final[float] = 0.05

#: Frames per wall-clock second; the 1 Hz dissemination tiers (guidance,
#: position-only) fire once per this many frames (Section III-A).
FRAMES_PER_SECOND: Final[int] = 20

#: IS tier: a frequent update every frame (50 ms).
FREQUENT_INTERVAL_FRAMES: Final[int] = 1

#: Proxy renewal "every couple of seconds" — 40 frames = 2 s (Section IV).
PROXY_PERIOD_FRAMES: Final[int] = 40

#: Handoff follow-up depth: two previous proxies (Section IV).
HANDOFF_DEPTH: Final[int] = 2

#: "the size of the IS can be fixed (e.g., 5)" (Section III-A).
INTEREST_SET_SIZE: Final[int] = 5

#: Quake III ±60° vision cone half-angle (Section III-A, Figure 2).
VISION_HALF_ANGLE: Final[float] = math.radians(60.0)

#: Cone enlargement so rapid spins do not miss avatars (Section III-A).
VISION_SLACK: Final[float] = math.radians(15.0)

#: ~100-bit lightweight signatures (Section IV).
SIGNATURE_BITS: Final[int] = 100

#: ~700-bit average full (non-delta) state update (Section IV).
STATE_UPDATE_BITS: Final[int] = 700

#: 150 ms tolerable latency ⇒ updates older than 3 frames count as loss.
MAX_USEFUL_AGE_FRAMES: Final[int] = 3

# -- robustness (graceful degradation under crashes / partitions) ----------

#: Client-side proxy-death detection: if a proxy's own publisher heartbeat
#: (its 1 Hz position updates double as liveness beacons, Section VI) has
#: been silent this long, the node presumes it crashed and fails over.
#: Must sit above one position-update interval (20 frames, so one lost
#: heartbeat is tolerated) and below the 60-frame membership silence
#: threshold, so failover always precedes eviction.
PROXY_SILENCE_THRESHOLD_FRAMES: Final[int] = 30

#: Bound on the failover walk along the verifiable candidate schedule
#: (candidate 0 is the scheduled proxy itself).
MAX_FAILOVER_ATTEMPTS: Final[int] = 3

#: Reliable-delivery retry ladder for the critical low-rate messages:
#: first retry after this many frames, doubling per attempt ...
ACK_RETRY_BASE_FRAMES: Final[int] = 4

#: ... capped at this backoff (frames) ...
ACK_RETRY_MAX_BACKOFF_FRAMES: Final[int] = 32

#: ... and abandoned after this many retransmissions.
ACK_RETRY_MAX_ATTEMPTS: Final[int] = 4

#: Membership silence threshold: a peer unheard-from for this many frames
#: becomes eligible for a removal proposal (three 1 Hz heartbeat periods;
#: Section VI).  Must sit above PROXY_SILENCE_THRESHOLD_FRAMES so client
#: failover always precedes eviction.
MEMBERSHIP_SILENCE_FRAMES: Final[int] = 60

#: A remote view older than two 1 Hz heartbeat periods cannot be explained
#: by the dissemination tiers — the publisher's path is black-holed.  The
#: chaos harness samples this per (observer, subject) pair to measure
#: staleness during/after an injected fault.
STALE_VIEW_AGE_FRAMES: Final[int] = 2 * FRAMES_PER_SECOND

# -- Byzantine hardening (repro.faults.byzantine; gated, default OFF) ------

#: Token-bucket refill per (receiver, transmitting hop) link per frame.
#: Honest sustained traffic on one link is a handful of messages per
#: frame (a proxy fanning out the frequent tier for the clients it
#: hosts); the refill sits well above that so honest links never strike.
BYZANTINE_RATE_MSGS_PER_FRAME: Final[int] = 8

#: Token-bucket capacity.  Must absorb legitimate one-frame bursts —
#: epoch-boundary subscription fan-out, handoff summaries and liveness
#: defense bursts all land together — which stay under a couple dozen
#: messages on one link even at chaos-matrix scale.
BYZANTINE_RATE_BURST: Final[int] = 80

#: Empty-bucket strikes before a link is quarantined.  More than one, so
#: a single freak burst is forgiven; a flood drains the bucket every
#: frame and crosses this within a few frames.
BYZANTINE_QUARANTINE_STRIKES: Final[int] = 3

#: Quarantine duration: one proxy period, after which the link gets a
#: fresh bucket — bounded, so a false positive can never silence a
#: player for good.
BYZANTINE_QUARANTINE_FRAMES: Final[int] = PROXY_PERIOD_FRAMES

#: Selective-forwarding suspicion: a roster member dark for this long
#: while his proxy demonstrably keeps speaking is circumstantial
#: evidence against the *proxy* (it cannot be the publisher's own
#: silence — the proxy's liveness proves the path out of that corner of
#: the network works).  Two 1 Hz heartbeat periods, matching the
#: staleness definition.
BYZANTINE_STARVATION_FRAMES: Final[int] = 2 * FRAMES_PER_SECOND


def _default_interest() -> "InterestConfig":
    # Imported lazily so this module stays an import leaf (game.interest
    # itself imports the vision-cone constants from here).
    from repro.game.interest import InterestConfig

    return InterestConfig()


@dataclass(frozen=True)
class WatchmenConfig:
    """Tuning knobs of a Watchmen session."""

    frame_seconds: float = FRAME_SECONDS
    # -- dissemination rates (paper Section III-A) --------------------------
    frequent_interval_frames: int = FREQUENT_INTERVAL_FRAMES  # IS: every 50 ms
    guidance_interval_frames: int = FRAMES_PER_SECOND  # VS: one per second
    position_interval_frames: int = FRAMES_PER_SECOND  # Others: every second
    guidance_horizon_frames: int = FRAMES_PER_SECOND  # DR prediction validity
    guidance_check_frames: int = 8  # verification window for guidance
    #: Publish a full keyframe StateUpdate (resetting delta coding) once a
    #: second even when deltas would do.
    keyframe_interval_frames: int = FRAMES_PER_SECOND
    # -- proxy architecture (Sections III-B, IV) -----------------------------
    proxy_period_frames: int = PROXY_PERIOD_FRAMES
    handoff_depth: int = HANDOFF_DEPTH  # follow-up on two previous proxies
    common_seed: bytes = b"watchmen-session"
    # -- subscriptions (Section VI latency optimizations) --------------------
    subscription_retention_frames: int = PROXY_PERIOD_FRAMES  # keep subs alive
    predict_ahead: bool = True  # subscribe for the *coming* frame
    relax_first_hop: bool = False  # send updates directly (lower security)
    # -- interest management --------------------------------------------------
    interest: InterestConfig = field(default_factory=_default_interest)
    # -- wire-size model (Section IV: 100-bit signatures, 700-bit updates) ---
    signature_bits: int = SIGNATURE_BITS
    state_update_bits: int = STATE_UPDATE_BITS  # full state update payload
    #: Delta coding ("updates show high temporal similarities and can be
    #: delta-coded, only including the differences"): a delta update pays a
    #: small base plus per-changed-field costs.
    delta_base_bits: int = 64
    delta_field_bits: dict = None  # type: ignore[assignment]
    position_update_bits: int = 220
    guidance_bits: int = 420
    subscription_bits: int = 160
    handoff_bits_per_entry: int = 500
    header_bits: int = 224  # UDP/IP + game header
    # -- verification depth ----------------------------------------------------
    #: Enable the high-cost action-repetition replay check at proxies
    #: (Section V-A's "more accuracy but higher costs" option).
    action_repetition: bool = False
    # -- robustness (repro.faults; both gates default OFF so fault-free ------
    # -- runs stay bit-identical to the ungated protocol) --------------------
    #: Fail over to the next verifiable candidate proxy when the scheduled
    #: one stops heartbeating (changes traffic, hence the RNG stream).
    proxy_failover: bool = False
    #: Ack/retry (capped exponential backoff) for the critical low-rate
    #: messages; state updates stay fire-and-forget per the paper.
    reliable_delivery: bool = False
    proxy_silence_threshold_frames: int = PROXY_SILENCE_THRESHOLD_FRAMES
    max_failover_attempts: int = MAX_FAILOVER_ATTEMPTS
    ack_retry_base_frames: int = ACK_RETRY_BASE_FRAMES
    ack_retry_max_backoff_frames: int = ACK_RETRY_MAX_BACKOFF_FRAMES
    ack_retry_max_attempts: int = ACK_RETRY_MAX_ATTEMPTS
    #: Frames of silence before a peer may be proposed for removal.  The
    #: model checker shrinks this (together with ``proxy_period_frames``)
    #: so eviction rounds fit inside a bounded-exploration horizon.
    membership_silence_frames: int = MEMBERSHIP_SILENCE_FRAMES
    #: While under a removal challenge a live player heartbeats directly
    #: to the roster (bypassing its possibly-dead proxy) at this cadence.
    #: Always on: it costs nothing until someone is actually accused.
    defense_interval_frames: int = 5
    # -- Byzantine hardening (repro.faults.byzantine; default OFF so -------
    # -- benign runs stay bit-identical to the ungated protocol) -----------
    #: Equivocation cross-check, signed misbehavior evidence, tamper
    #: attribution to the relaying hop, per-link token-bucket rate
    #: limiting with bounded quarantine, and selective-forwarding /
    #: ack-withholding suspicion ratings.
    byzantine_hardening: bool = False
    rate_limit_msgs_per_frame: int = BYZANTINE_RATE_MSGS_PER_FRAME
    rate_limit_burst: int = BYZANTINE_RATE_BURST
    quarantine_strikes: int = BYZANTINE_QUARANTINE_STRIKES
    quarantine_frames: int = BYZANTINE_QUARANTINE_FRAMES
    starvation_suspicion_frames: int = BYZANTINE_STARVATION_FRAMES
    # -- responsiveness accounting -------------------------------------------
    max_useful_age_frames: int = MAX_USEFUL_AGE_FRAMES  # ≥150 ms counts as loss

    _DELTA_FIELD_BITS = {
        "position": 96,
        "velocity": 96,
        "yaw": 32,
        "health": 16,
        "armor": 16,
        "weapon": 24,
        "ammo": 16,
        "alive": 8,
    }

    def __post_init__(self) -> None:
        if self.delta_field_bits is None:
            object.__setattr__(
                self, "delta_field_bits", dict(self._DELTA_FIELD_BITS)
            )
        if self.frame_seconds <= 0:
            raise ValueError("frame_seconds must be positive")
        if self.proxy_period_frames <= 0:
            raise ValueError("proxy_period_frames must be positive")
        if self.frequent_interval_frames <= 0:
            raise ValueError("frequent_interval_frames must be positive")
        if self.guidance_interval_frames <= 0:
            raise ValueError("guidance_interval_frames must be positive")
        if self.position_interval_frames <= 0:
            raise ValueError("position_interval_frames must be positive")
        if self.keyframe_interval_frames <= 0:
            raise ValueError("keyframe_interval_frames must be positive")
        if self.handoff_depth < 0:
            raise ValueError("handoff_depth must be non-negative")
        if self.signature_bits <= 0 or self.state_update_bits <= 0:
            raise ValueError("wire sizes must be positive")
        if self.proxy_silence_threshold_frames <= 0:
            raise ValueError("proxy_silence_threshold_frames must be positive")
        if self.max_failover_attempts < 1:
            raise ValueError("max_failover_attempts must be at least 1")
        if self.defense_interval_frames <= 0:
            raise ValueError("defense_interval_frames must be positive")
        if self.ack_retry_base_frames <= 0:
            raise ValueError("ack_retry_base_frames must be positive")
        if self.ack_retry_max_backoff_frames < self.ack_retry_base_frames:
            raise ValueError("ack_retry_max_backoff_frames below the base delay")
        if self.ack_retry_max_attempts < 0:
            raise ValueError("ack_retry_max_attempts must be non-negative")
        if self.membership_silence_frames <= self.proxy_silence_threshold_frames:
            raise ValueError(
                "membership_silence_frames must exceed the proxy silence "
                "threshold so failover precedes eviction"
            )
        if self.rate_limit_msgs_per_frame <= 0:
            raise ValueError("rate_limit_msgs_per_frame must be positive")
        if self.rate_limit_burst < self.rate_limit_msgs_per_frame:
            raise ValueError("rate_limit_burst below the per-frame refill")
        if self.quarantine_strikes < 1:
            raise ValueError("quarantine_strikes must be at least 1")
        if self.quarantine_frames <= 0:
            raise ValueError("quarantine_frames must be positive")
        if self.starvation_suspicion_frames <= 0:
            raise ValueError("starvation_suspicion_frames must be positive")

    def epoch_of_frame(self, frame: int) -> int:
        """The proxy epoch a frame belongs to."""
        if frame < 0:
            raise ValueError("frame must be non-negative")
        return frame // self.proxy_period_frames
