"""The serialization boundary: GameMessage <-> JSON-safe dicts.

The simulated network passes Python objects, but persistence (traces of
protocol traffic), cross-process deployment and the conformance analyzer
all need an explicit, total codec.  ``MESSAGE_TYPES`` is the registry the
``P203`` lint rule cross-references against the ``GameMessage`` union:
adding a message type without registering it here fails ``repro lint``.

Encoding is structural — driven by the dataclass field types — so a new
field on an existing message round-trips without codec edits; only *new
message types* need a registry entry.  The encoding is canonical (sorted
keys, no whitespace) so encoded bytes are stable across nodes, which is
what lets them be hashed or signed.
"""

from __future__ import annotations

import dataclasses
import json
import types
import typing
from typing import Any, Union

from repro.core.membership import RemovalProposal
from repro.core.messages import (
    AckMessage,
    GameMessage,
    GuidanceMessage,
    HandoffMessage,
    HandoffSummary,
    KillClaim,
    MisbehaviorEvidence,
    PositionUpdate,
    ProjectileSpawn,
    StateUpdate,
    SubscriptionRequest,
)
from repro.crypto.signatures import Signature
from repro.game.avatar import AvatarSnapshot
from repro.game.deadreckoning import GuidancePrediction
from repro.game.vector import Vec3

__all__ = [
    "MESSAGE_TYPES",
    "WireError",
    "encode_message",
    "decode_message",
    "encode_bytes",
    "decode_bytes",
]


class WireError(ValueError):
    """Raised for unknown message types or malformed wire payloads."""


#: Registry of every message type that crosses the wire.  The P203 lint
#: rule fails when a GameMessage union member is missing here.
MESSAGE_TYPES: dict[str, type] = {
    "StateUpdate": StateUpdate,
    "PositionUpdate": PositionUpdate,
    "GuidanceMessage": GuidanceMessage,
    "SubscriptionRequest": SubscriptionRequest,
    "KillClaim": KillClaim,
    "ProjectileSpawn": ProjectileSpawn,
    "HandoffMessage": HandoffMessage,
    "RemovalProposal": RemovalProposal,
    "AckMessage": AckMessage,
    "MisbehaviorEvidence": MisbehaviorEvidence,
}

#: Payload dataclasses that appear as message fields (encoded as dicts).
#: StateUpdate is both a wire message and a payload: misbehavior evidence
#: nests the two conflicting signed updates it proves with.
_PAYLOAD_TYPES = (
    AvatarSnapshot,
    GuidancePrediction,
    HandoffSummary,
    Vec3,
    StateUpdate,
)


def _encode_value(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, bytes):
        return value.hex()
    if isinstance(value, Signature):
        return {
            "scheme": value.scheme,
            "signer_id": value.signer_id,
            "data": value.data.hex(),
        }
    if isinstance(value, _PAYLOAD_TYPES):
        return {
            field.name: _encode_value(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, frozenset):
        return sorted(value)
    if isinstance(value, tuple):
        return [_encode_value(item) for item in value]
    raise WireError(f"cannot encode value of type {type(value).__name__}")


def encode_message(message: GameMessage) -> dict[str, Any]:
    """One message as a JSON-safe dict, tagged with its type name."""
    name = type(message).__name__
    if name not in MESSAGE_TYPES:
        raise WireError(f"unregistered message type {name}")
    return {
        "type": name,
        **{
            field.name: _encode_value(getattr(message, field.name))
            for field in dataclasses.fields(message)
        },
    }


def _hints_for(cls: type) -> dict[str, Any]:
    # Resolved once per class; `from __future__ import annotations` makes
    # every hint a string until this call.
    cached = _HINTS_CACHE.get(cls)
    if cached is None:
        cached = typing.get_type_hints(cls)
        _HINTS_CACHE[cls] = cached
    return cached


_HINTS_CACHE: dict[type, dict[str, Any]] = {}


def _decode_value(declared: Any, data: Any) -> Any:
    origin = typing.get_origin(declared)
    if origin in (Union, types.UnionType):
        arms = [a for a in typing.get_args(declared) if a is not type(None)]
        if data is None:
            return None
        if len(arms) != 1:
            raise WireError(f"ambiguous union {declared!r}")
        return _decode_value(arms[0], data)
    if origin is tuple:
        args = typing.get_args(declared)
        if len(args) == 2 and args[1] is Ellipsis:
            return tuple(_decode_value(args[0], item) for item in data)
        return tuple(
            _decode_value(arm, item) for arm, item in zip(args, data, strict=True)
        )
    if origin is frozenset:
        (arm,) = typing.get_args(declared)
        return frozenset(_decode_value(arm, item) for item in data)
    if declared is Signature:
        if not isinstance(data, dict):
            raise WireError("signature payload must be an object")
        return Signature(
            scheme=data["scheme"],
            signer_id=data["signer_id"],
            data=bytes.fromhex(data["data"]),
        )
    if declared is bytes:
        return bytes.fromhex(data)
    if dataclasses.is_dataclass(declared):
        if not isinstance(data, dict):
            raise WireError(
                f"{declared.__name__} payload must be an object, got {type(data).__name__}"
            )
        hints = _hints_for(declared)
        kwargs = {
            field.name: _decode_value(hints[field.name], data[field.name])
            for field in dataclasses.fields(declared)
        }
        return declared(**kwargs)
    if declared is float and isinstance(data, int):
        return float(data)
    if declared in (int, float, str, bool, object) or declared is Any:
        return data
    raise WireError(f"cannot decode declared type {declared!r}")


def decode_message(data: dict[str, Any]) -> GameMessage:
    """Inverse of :func:`encode_message`; raises WireError on bad input."""
    if not isinstance(data, dict) or "type" not in data:
        raise WireError("wire payload must be a dict with a 'type' tag")
    cls = MESSAGE_TYPES.get(data["type"])
    if cls is None:
        raise WireError(f"unknown message type {data['type']!r}")
    hints = _hints_for(cls)
    try:
        kwargs = {
            field.name: _decode_value(hints[field.name], data[field.name])
            for field in dataclasses.fields(cls)
        }
    except KeyError as error:
        raise WireError(f"{data['type']}: missing field {error}") from error
    return cls(**kwargs)


def encode_bytes(message: GameMessage) -> bytes:
    """Canonical UTF-8 JSON bytes (sorted keys — stable across nodes)."""
    return json.dumps(
        encode_message(message), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def decode_bytes(payload: bytes) -> GameMessage:
    try:
        data = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise WireError(f"undecodable wire bytes: {error}") from error
    return decode_message(data)
