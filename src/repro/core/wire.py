"""The serialization boundary: GameMessage <-> canonical binary frames.

The simulated network passes Python objects, but persistence (traces of
protocol traffic), cross-process deployment and the conformance analyzer
all need an explicit, total codec.  ``MESSAGE_TYPES`` is the registry the
``P203`` lint rule cross-references against the ``GameMessage`` union:
adding a message type without registering it here fails ``repro lint``.
``MESSAGE_TAGS`` assigns each registered type its one-byte wire tag; the
``P206`` rule keeps the two tables in lockstep.

Encoding is structural — driven by the dataclass field types — so a new
field on an existing message round-trips without codec edits; only *new
message types* need a registry entry and a tag.  The binary frame is
**canonical**: exactly one byte string encodes any given message (minimal
varints, table-preferred strings, sorted sets, no trailing bytes), which
is what lets encoded frames be hashed, compared, and signed.  The paper's
scalability argument is bit-level (~100-bit signatures, 924-bit state
updates); this codec is what makes the simulated bandwidth accounting
match that arithmetic instead of paying JSON's 5-10x envelope tax.

Frame layout (see docs/PROTOCOL.md for the full field tables)::

    frame     := tag:u8 field*          # fields in dataclass order
    int       := zigzag LEB128 varint   # minimal encoding required
    float     := IEEE-754 binary64, big-endian (bit-exact)
    bool      := u8 (0|1)
    str       := 0x00 uvarint utf8* | table-code:u8 (1..N)
    bytes     := uvarint raw*
    Optional  := present:u8 (0|1) [value]
    tuple[X,…]:= uvarint value*
    frozenset := uvarint value*         # strictly ascending
    dataclass := field*                 # nested, structural

The legacy JSON envelope survives as :func:`encode_json_bytes` /
:func:`decode_json_bytes` (debug dumps, size comparisons); the dict forms
:func:`encode_message` / :func:`decode_message` are unchanged.
"""

from __future__ import annotations

import dataclasses
import json
import struct
import types
import typing
from typing import Any, Callable, Union

from repro.core.membership import RemovalProposal
from repro.core.messages import (
    AckMessage,
    GameMessage,
    GuidanceMessage,
    HandoffMessage,
    HandoffSummary,
    KillClaim,
    MisbehaviorEvidence,
    PositionUpdate,
    ProjectileSpawn,
    StateUpdate,
    SubscriptionRequest,
)
from repro.crypto.signatures import Signature
from repro.game.avatar import AvatarSnapshot
from repro.game.deadreckoning import GuidancePrediction
from repro.game.vector import Vec3

__all__ = [
    "MESSAGE_TYPES",
    "MESSAGE_TAGS",
    "WireError",
    "encode_message",
    "decode_message",
    "encode_bytes",
    "decode_bytes",
    "encode_signable",
    "encoded_size",
    "encode_json_bytes",
    "decode_json_bytes",
]


class WireError(ValueError):
    """Raised for unknown message types or malformed wire payloads."""


#: Registry of every message type that crosses the wire.  The P203 lint
#: rule fails when a GameMessage union member is missing here.
MESSAGE_TYPES: dict[str, type] = {
    "StateUpdate": StateUpdate,
    "PositionUpdate": PositionUpdate,
    "GuidanceMessage": GuidanceMessage,
    "SubscriptionRequest": SubscriptionRequest,
    "KillClaim": KillClaim,
    "ProjectileSpawn": ProjectileSpawn,
    "HandoffMessage": HandoffMessage,
    "RemovalProposal": RemovalProposal,
    "AckMessage": AckMessage,
    "MisbehaviorEvidence": MisbehaviorEvidence,
}

#: One-byte wire tag per registered message type.  Tags are append-only
#: protocol surface: recorded tapes store them, so renumbering an
#: existing entry orphans every committed tape.  The P206 lint rule
#: fails when this table and MESSAGE_TYPES drift apart.
MESSAGE_TAGS: dict[str, int] = {
    "StateUpdate": 1,
    "PositionUpdate": 2,
    "GuidanceMessage": 3,
    "SubscriptionRequest": 4,
    "KillClaim": 5,
    "ProjectileSpawn": 6,
    "HandoffMessage": 7,
    "RemovalProposal": 8,
    "AckMessage": 9,
    "MisbehaviorEvidence": 10,
}

_TAG_TO_TYPE: dict[int, type] = {
    MESSAGE_TAGS[name]: cls for name, cls in MESSAGE_TYPES.items()
}

#: Payload dataclasses that appear as message fields (encoded as dicts).
#: StateUpdate is both a wire message and a payload: misbehavior evidence
#: nests the two conflicting signed updates it proves with.
_PAYLOAD_TYPES = (
    AvatarSnapshot,
    GuidancePrediction,
    HandoffSummary,
    Vec3,
    StateUpdate,
)

#: Protocol-constant strings encoded as a single table code instead of
#: inline UTF-8: snapshot delta field names, stock weapon names, the
#: signature schemes, and the subscription kinds.  Append-only for the
#: same tape-compatibility reason as MESSAGE_TAGS.  A string present
#: here MUST be table-coded (canonical form); anything else is inline.
_STRING_TABLE: tuple[str, ...] = (
    "",
    "position",
    "velocity",
    "yaw",
    "health",
    "armor",
    "weapon",
    "ammo",
    "alive",
    "machinegun",
    "shotgun",
    "rocket-launcher",
    "lightning-gun",
    "railgun",
    "hmac-sha256",
    "schnorr-secp256k1",
    "VS",
    "IS",
)
_STRING_CODES: dict[str, int] = {
    value: index + 1 for index, value in enumerate(_STRING_TABLE)
}

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1
_PACK_F64 = struct.Struct(">d")


# ---- primitive writers -----------------------------------------------------


def _write_uvarint(value: int, out: bytearray) -> None:
    """Unsigned LEB128 (lengths and counts)."""
    while value >= 0x80:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _write_int(value: int, out: bytearray) -> None:
    """Zigzag LEB128: small magnitudes of either sign stay one byte."""
    if not _INT64_MIN <= value <= _INT64_MAX:
        raise WireError(f"int {value} outside the 64-bit wire range")
    zigzag = (value << 1) if value >= 0 else ((-value << 1) - 1)
    _write_uvarint(zigzag, out)


def _write_float(value: float, out: bytearray) -> None:
    # binary64 bit pattern, verbatim: the codec must be exact on raw
    # simulation doubles or decode(encode(m)) == m fails.
    try:
        out += _PACK_F64.pack(value)
    except (TypeError, struct.error) as error:
        raise WireError(f"cannot encode float {value!r}") from error


def _write_str(value: str, out: bytearray) -> None:
    code = _STRING_CODES.get(value)
    if code is not None:
        out.append(code)
        return
    raw = value.encode("utf-8")
    out.append(0)
    _write_uvarint(len(raw), out)
    out += raw


def _write_bytes(value: bytes, out: bytearray) -> None:
    _write_uvarint(len(value), out)
    out += value


# ---- primitive readers -----------------------------------------------------


class _Reader:
    """Bounds-checked cursor: every overrun is a WireError, never an
    IndexError or struct.error escaping to the caller."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def byte(self) -> int:
        if self.pos >= len(self.data):
            raise WireError("truncated wire frame")
        value = self.data[self.pos]
        self.pos += 1
        return value

    def take(self, count: int) -> bytes:
        end = self.pos + count
        if end > len(self.data):
            raise WireError("truncated wire frame")
        chunk = self.data[self.pos : end]
        self.pos = end
        return chunk

    def remaining(self) -> int:
        return len(self.data) - self.pos


def _read_uvarint(reader: _Reader) -> int:
    result = 0
    shift = 0
    count = 0
    while True:
        byte = reader.byte()
        count += 1
        result |= (byte & 0x7F) << shift
        if not (byte & 0x80):
            if byte == 0 and count > 1:
                # e.g. 0x80 0x00 re-encodes 0 — one valid encoding only
                raise WireError("non-minimal varint")
            if result > (1 << 64) - 1:
                raise WireError("varint exceeds 64 bits")
            return result
        if count >= 10:
            raise WireError("varint exceeds 64 bits")
        shift += 7


def _read_int(reader: _Reader) -> int:
    zigzag = _read_uvarint(reader)
    return (zigzag >> 1) if not (zigzag & 1) else -((zigzag + 1) >> 1)


def _read_float(reader: _Reader) -> float:
    return _PACK_F64.unpack(reader.take(8))[0]


def _read_str(reader: _Reader) -> str:
    code = reader.byte()
    if code != 0:
        if code > len(_STRING_TABLE):
            raise WireError(f"unknown string-table code {code}")
        return _STRING_TABLE[code - 1]
    length = _read_uvarint(reader)
    try:
        value = reader.take(length).decode("utf-8")
    except UnicodeDecodeError as error:
        raise WireError("invalid UTF-8 in wire string") from error
    if value in _STRING_CODES:
        raise WireError(f"non-canonical inline encoding of {value!r}")
    return value


def _read_bytes(reader: _Reader) -> bytes:
    return reader.take(_read_uvarint(reader))


# ---- structural codec ------------------------------------------------------
#
# One compiled (encoder, decoder) closure pair per declared field type,
# cached by the type object — type-hint dispatch happens once per type,
# not once per message, which matters because every signature covers an
# encode_signable() call on the hot path.

_Encoder = Callable[[Any, bytearray], None]
_Decoder = Callable[[_Reader], Any]
_CODECS: dict[Any, tuple[_Encoder, _Decoder]] = {}


def _codec_for(declared: Any) -> tuple[_Encoder, _Decoder]:
    pair = _CODECS.get(declared)
    if pair is None:
        pair = _build_codec(declared)
        _CODECS[declared] = pair
    return pair


def _bool_encoder(value: Any, out: bytearray) -> None:
    out.append(1 if value else 0)


def _bool_decoder(reader: _Reader) -> bool:
    flag = reader.byte()
    if flag > 1:
        raise WireError(f"bool byte must be 0 or 1, got {flag}")
    return flag == 1


def _float_encoder(value: Any, out: bytearray) -> None:
    # int-valued floats arrive from hand-built messages; normalise like
    # the JSON codec did rather than reject.
    _write_float(float(value) if type(value) is int else value, out)


def _build_codec(declared: Any) -> tuple[_Encoder, _Decoder]:
    origin = typing.get_origin(declared)
    if origin in (Union, types.UnionType):
        arms = [a for a in typing.get_args(declared) if a is not type(None)]
        if len(arms) != 1:
            raise WireError(f"ambiguous union {declared!r}")
        inner_encode, inner_decode = _codec_for(arms[0])

        def encode(value: Any, out: bytearray) -> None:
            if value is None:
                out.append(0)
            else:
                out.append(1)
                inner_encode(value, out)

        def decode(reader: _Reader) -> Any:
            present = reader.byte()
            if present == 0:
                return None
            if present != 1:
                raise WireError(f"presence byte must be 0 or 1, got {present}")
            return inner_decode(reader)

        return encode, decode
    if origin is tuple:
        args = typing.get_args(declared)
        if len(args) == 2 and args[1] is Ellipsis:
            item_encode, item_decode = _codec_for(args[0])

            def encode(value: Any, out: bytearray) -> None:
                _write_uvarint(len(value), out)
                for item in value:
                    item_encode(item, out)

            def decode(reader: _Reader) -> Any:
                count = _read_uvarint(reader)
                if count > reader.remaining():
                    # every element costs >= 1 byte; reject absurd counts
                    # before looping rather than after
                    raise WireError("truncated wire frame")
                return tuple(item_decode(reader) for _ in range(count))

            return encode, decode
        arm_codecs = [_codec_for(arm) for arm in args]

        def encode(value: Any, out: bytearray) -> None:
            if len(value) != len(arm_codecs):
                raise WireError(
                    f"expected {len(arm_codecs)}-tuple, got {len(value)}"
                )
            for (arm_encode, _), item in zip(arm_codecs, value):
                arm_encode(item, out)

        def decode(reader: _Reader) -> Any:
            return tuple(arm_decode(reader) for _, arm_decode in arm_codecs)

        return encode, decode
    if origin is frozenset:
        (arm,) = typing.get_args(declared)
        item_encode, item_decode = _codec_for(arm)

        def encode(value: Any, out: bytearray) -> None:
            _write_uvarint(len(value), out)
            for item in sorted(value):
                item_encode(item, out)

        def decode(reader: _Reader) -> Any:
            count = _read_uvarint(reader)
            if count > reader.remaining():
                raise WireError("truncated wire frame")
            items = []
            for _ in range(count):
                item = item_decode(reader)
                if items and not item > items[-1]:
                    raise WireError("set elements must be strictly ascending")
                items.append(item)
            return frozenset(items)

        return encode, decode
    if declared is Signature:
        return _codec_for_dataclass(Signature)
    if declared is bytes:
        return _write_bytes, _read_bytes
    if dataclasses.is_dataclass(declared):
        return _codec_for_dataclass(declared)
    if declared is bool:
        return _bool_encoder, _bool_decoder
    if declared is int:
        return _write_int, _read_int
    if declared is float:
        return _float_encoder, _read_float
    if declared is str:
        return _write_str, _read_str
    raise WireError(f"cannot build a wire codec for {declared!r}")


def _codec_for_dataclass(cls: type) -> tuple[_Encoder, _Decoder]:
    hints = _hints_for(cls)
    plan = tuple(
        (field.name, _codec_for(hints[field.name]))
        for field in dataclasses.fields(cls)
    )

    def encode(value: Any, out: bytearray) -> None:
        if type(value) is not cls:
            raise WireError(
                f"expected {cls.__name__}, got {type(value).__name__}"
            )
        for name, (field_encode, _) in plan:
            field_encode(getattr(value, name), out)

    def decode(reader: _Reader) -> Any:
        kwargs = {
            name: field_decode(reader) for name, (_, field_decode) in plan
        }
        try:
            return cls(**kwargs)
        except WireError:
            raise
        except (TypeError, ValueError) as error:
            # e.g. SubscriptionRequest's kind validation
            raise WireError(f"invalid {cls.__name__}: {error}") from error

    return encode, decode


def _field_plan(cls: type) -> tuple[tuple[str, tuple[_Encoder, _Decoder]], ...]:
    hints = _hints_for(cls)
    return tuple(
        (field.name, _codec_for(hints[field.name]))
        for field in dataclasses.fields(cls)
    )


_PLAN_CACHE: dict[type, tuple[tuple[str, tuple[_Encoder, _Decoder]], ...]] = {}


def _plan_for(cls: type) -> tuple[tuple[str, tuple[_Encoder, _Decoder]], ...]:
    plan = _PLAN_CACHE.get(cls)
    if plan is None:
        plan = _field_plan(cls)
        _PLAN_CACHE[cls] = plan
    return plan


# ---- binary envelope -------------------------------------------------------


def encode_bytes(message: GameMessage) -> bytes:
    """One canonical binary frame: tag byte + fields in declared order."""
    name = type(message).__name__
    tag = MESSAGE_TAGS.get(name)
    if tag is None or MESSAGE_TYPES.get(name) is not type(message):
        raise WireError(f"unregistered message type {name}")
    out = bytearray((tag,))
    for field_name, (field_encode, _) in _plan_for(type(message)):
        field_encode(getattr(message, field_name), out)
    return bytes(out)


def decode_bytes(payload: bytes) -> GameMessage:
    """Inverse of :func:`encode_bytes`; raises WireError on any malformed
    input — truncation, bad tags, non-canonical forms, trailing bytes."""
    if not isinstance(payload, (bytes, bytearray, memoryview)):
        raise WireError("wire frame must be bytes")
    reader = _Reader(bytes(payload))
    tag = reader.byte()
    cls = _TAG_TO_TYPE.get(tag)
    if cls is None:
        raise WireError(f"unknown message tag {tag}")
    kwargs = {
        name: field_decode(reader)
        for name, (_, field_decode) in _plan_for(cls)
    }
    if reader.remaining():
        raise WireError(f"{reader.remaining()} trailing bytes after frame")
    try:
        return cls(**kwargs)
    except WireError:
        raise
    except (TypeError, ValueError) as error:
        raise WireError(f"invalid {cls.__name__}: {error}") from error


def encode_signable(message: GameMessage) -> bytes:
    """The byte string a node signs: the full canonical frame *minus* the
    top-level signature field.  Nested signatures (the signed updates
    inside MisbehaviorEvidence) stay in — the evidence covers them.
    Canonicality of the frame makes this deterministic across nodes."""
    name = type(message).__name__
    tag = MESSAGE_TAGS.get(name)
    if tag is None or MESSAGE_TYPES.get(name) is not type(message):
        raise WireError(f"unregistered message type {name}")
    out = bytearray((tag,))
    for field_name, (field_encode, _) in _plan_for(type(message)):
        if field_name == "signature":
            continue
        field_encode(getattr(message, field_name), out)
    return bytes(out)


def encoded_size(message: GameMessage) -> int:
    """Serialized frame size in bytes — what the bandwidth model charges."""
    return len(encode_bytes(message))


# ---- JSON-safe dict forms (unchanged; debug dumps and human diffs) ---------


def _encode_value(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, bytes):
        return value.hex()
    if isinstance(value, Signature):
        return {
            "scheme": value.scheme,
            "signer_id": value.signer_id,
            "data": value.data.hex(),
        }
    if isinstance(value, _PAYLOAD_TYPES):
        return {
            field.name: _encode_value(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, frozenset):
        return sorted(value)
    if isinstance(value, tuple):
        return [_encode_value(item) for item in value]
    raise WireError(f"cannot encode value of type {type(value).__name__}")


def encode_message(message: GameMessage) -> dict[str, Any]:
    """One message as a JSON-safe dict, tagged with its type name."""
    name = type(message).__name__
    if name not in MESSAGE_TYPES:
        raise WireError(f"unregistered message type {name}")
    return {
        "type": name,
        **{
            field.name: _encode_value(getattr(message, field.name))
            for field in dataclasses.fields(message)
        },
    }


def _hints_for(cls: type) -> dict[str, Any]:
    # Resolved once per class; `from __future__ import annotations` makes
    # every hint a string until this call.
    cached = _HINTS_CACHE.get(cls)
    if cached is None:
        cached = typing.get_type_hints(cls)
        _HINTS_CACHE[cls] = cached
    return cached


_HINTS_CACHE: dict[type, dict[str, Any]] = {}


def _decode_value(declared: Any, data: Any) -> Any:
    origin = typing.get_origin(declared)
    if origin in (Union, types.UnionType):
        arms = [a for a in typing.get_args(declared) if a is not type(None)]
        if data is None:
            return None
        if len(arms) != 1:
            raise WireError(f"ambiguous union {declared!r}")
        return _decode_value(arms[0], data)
    if origin is tuple:
        args = typing.get_args(declared)
        if len(args) == 2 and args[1] is Ellipsis:
            return tuple(_decode_value(args[0], item) for item in data)
        return tuple(
            _decode_value(arm, item) for arm, item in zip(args, data, strict=True)
        )
    if origin is frozenset:
        (arm,) = typing.get_args(declared)
        return frozenset(_decode_value(arm, item) for item in data)
    if declared is Signature:
        if not isinstance(data, dict):
            raise WireError("signature payload must be an object")
        return Signature(
            scheme=data["scheme"],
            signer_id=data["signer_id"],
            data=bytes.fromhex(data["data"]),
        )
    if declared is bytes:
        return bytes.fromhex(data)
    if dataclasses.is_dataclass(declared):
        if not isinstance(data, dict):
            raise WireError(
                f"{declared.__name__} payload must be an object, got {type(data).__name__}"
            )
        hints = _hints_for(declared)
        kwargs = {
            field.name: _decode_value(hints[field.name], data[field.name])
            for field in dataclasses.fields(declared)
        }
        return declared(**kwargs)
    if declared is float and isinstance(data, int):
        return float(data)
    if declared in (int, float, str, bool, object) or declared is Any:
        return data
    raise WireError(f"cannot decode declared type {declared!r}")


def decode_message(data: dict[str, Any]) -> GameMessage:
    """Inverse of :func:`encode_message`; raises WireError on bad input."""
    if not isinstance(data, dict) or "type" not in data:
        raise WireError("wire payload must be a dict with a 'type' tag")
    cls = MESSAGE_TYPES.get(data["type"])
    if cls is None:
        raise WireError(f"unknown message type {data['type']!r}")
    hints = _hints_for(cls)
    try:
        kwargs = {
            field.name: _decode_value(hints[field.name], data[field.name])
            for field in dataclasses.fields(cls)
        }
    except KeyError as error:
        raise WireError(f"{data['type']}: missing field {error}") from error
    return cls(**kwargs)


def encode_json_bytes(message: GameMessage) -> bytes:
    """Canonical UTF-8 JSON bytes (sorted keys — stable across nodes).
    The pre-binary envelope, kept for debug dumps and the wire bench's
    size comparison; the protocol itself ships :func:`encode_bytes`."""
    return json.dumps(
        encode_message(message), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def decode_json_bytes(payload: bytes) -> GameMessage:
    try:
        data = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise WireError(f"undecodable wire bytes: {error}") from error
    return decode_message(data)
