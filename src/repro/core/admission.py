"""Session admission: the feasibility test and heterogeneous proxy pools.

Section VI ("Upload capacity & Fairness"): "the selection process can be
refined, if necessary, to take into account resource heterogeneity ...
using the same verifiable random generator players with low resources are
removed from the proxy pool and more powerful [nodes] can become proxies
for more than one player ... Similar to most current systems a
feasibility test can be run at the beginning of [the] gaming session to
determine if players meet the minimum requirements."

:func:`estimate_publisher_kbps` / :func:`estimate_proxy_kbps` derive the
protocol's load from the wire-size model; :func:`feasibility_test` turns
advertised upload capacities into an admission decision: who may play at
all, who serves in the proxy pool, and with what weight.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import WatchmenConfig

__all__ = [
    "AdmissionDecision",
    "estimate_publisher_kbps",
    "estimate_proxy_kbps",
    "feasibility_test",
]


def estimate_publisher_kbps(config: WatchmenConfig) -> float:
    """Upload a player needs just to publish his own avatar."""
    per_second = 1.0 / config.frame_seconds
    state = (
        (config.state_update_bits + config.header_bits + config.signature_bits)
        * per_second
        / config.frequent_interval_frames
    )
    guidance = (
        (config.guidance_bits + config.header_bits + config.signature_bits)
        * per_second
        / config.guidance_interval_frames
    )
    position = (
        (config.position_update_bits + config.header_bits + config.signature_bits)
        * per_second
        / config.position_interval_frames
    )
    subscriptions = (
        (config.subscription_bits + config.header_bits + config.signature_bits)
        * per_second
        / max(1, config.subscription_retention_frames)
        * config.interest.interest_size
    )
    return (state + guidance + position + subscriptions) / 1000.0


def estimate_proxy_kbps(config: WatchmenConfig, num_players: int) -> float:
    """Upload one proxy tenure costs (forwarding for a single client)."""
    per_second = 1.0 / config.frame_seconds
    # Frequent updates to up to IS-size subscribers, every frame.
    frequent = (
        (config.state_update_bits + config.header_bits + config.signature_bits)
        * per_second
        * config.interest.interest_size
    )
    # Guidance to a comparable number of VS subscribers, 1 Hz.
    guidance = (
        (config.guidance_bits + config.header_bits + config.signature_bits)
        * per_second
        / config.guidance_interval_frames
        * config.interest.interest_size
    )
    # Position-only updates to everyone else, 1 Hz.
    others = max(0, num_players - 2 * config.interest.interest_size - 1)
    position = (
        (config.position_update_bits + config.header_bits + config.signature_bits)
        * per_second
        / config.position_interval_frames
        * others
    )
    return (frequent + guidance + position) / 1000.0


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of the feasibility test."""

    admitted: list[int]
    rejected: list[int]
    proxy_pool: list[int]
    pool_weights: dict[int, int] = field(default_factory=dict)
    publisher_kbps: float = 0.0
    proxy_kbps: float = 0.0


def feasibility_test(
    capacities: dict[int, float],
    config: WatchmenConfig | None = None,
    headroom: float = 1.25,
    max_weight: int = 4,
) -> AdmissionDecision:
    """Admit players and build the heterogeneous proxy pool.

    - capacity < publisher load × headroom → **rejected** (cannot even
      publish; the lobby turns the player away);
    - capacity < publisher + one proxy tenure → admitted but **removed
      from the proxy pool** (forwarded-for, never forwarding);
    - otherwise pooled with weight ∝ how many tenures fit (capped at
      ``max_weight`` — "this will increase proxies' access to information
      and should be avoided unless necessary").
    """
    if not capacities:
        raise ValueError("no players to admit")
    if headroom < 1.0:
        raise ValueError("headroom must be at least 1.0")
    config = config or WatchmenConfig()
    num_players = len(capacities)
    publisher = estimate_publisher_kbps(config) * headroom
    proxy = estimate_proxy_kbps(config, num_players) * headroom

    admitted: list[int] = []
    rejected: list[int] = []
    pool: list[int] = []
    weights: dict[int, int] = {}
    for player, capacity in sorted(capacities.items()):
        if capacity < publisher:
            rejected.append(player)
            continue
        admitted.append(player)
        spare = capacity - publisher
        tenures = int(spare // proxy) if proxy > 0 else max_weight
        if tenures >= 1:
            pool.append(player)
            weights[player] = min(max_weight, tenures)
    if len(admitted) >= 2 and not pool:
        # Degenerate but playable: everyone forwards a little.
        pool = list(admitted)
        weights = {p: 1 for p in pool}
    return AdmissionDecision(
        admitted=admitted,
        rejected=rejected,
        proxy_pool=pool,
        pool_weights=weights,
        publisher_kbps=publisher / headroom,
        proxy_kbps=proxy / headroom,
    )
