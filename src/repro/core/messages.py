"""The Watchmen wire-message taxonomy and its size model.

Figure 3's message flows, as Python types.  All player-originated messages
are signed (``signature`` field) and carry a per-sender sequence number, so
proxies cannot tamper, replay or spoof ("lightweight digital signatures
... also prevents replaying and spoofing").

Sizes are modelled in bits, following the paper's numbers (700-bit average
state updates, 100-bit signatures); :func:`message_size_bits` is the single
size oracle used by the bandwidth accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.core.config import WatchmenConfig
from repro.core.membership import RemovalProposal
from repro.crypto.signatures import Signature
from repro.game.avatar import AvatarSnapshot
from repro.game.deadreckoning import GuidancePrediction
from repro.game.vector import Vec3

__all__ = [
    "ProjectileSpawn",
    "RemovalProposal",
    "StateUpdate",
    "PositionUpdate",
    "GuidanceMessage",
    "SubscriptionRequest",
    "KillClaim",
    "HandoffSummary",
    "HandoffMessage",
    "AckMessage",
    "MisbehaviorEvidence",
    "GameMessage",
    "ACKABLE_TYPES",
    "signable_bytes",
    "message_size_bits",
    "SUB_VISION",
    "SUB_INTEREST",
]

SUB_VISION = "VS"
SUB_INTEREST = "IS"


@dataclass(frozen=True, slots=True)
class StateUpdate:
    """Frequent full state update (every frame, to IS subscribers).

    ``delta_fields`` names the snapshot fields that changed since the
    publisher's previous update; when non-empty the wire-size model charges
    only the delta ("updates ... can be delta-coded").  An empty tuple
    means a full (keyframe) encoding.
    """

    sender_id: int
    frame: int
    sequence: int
    snapshot: AvatarSnapshot
    delta_fields: tuple[str, ...] = ()
    signature: Signature | None = None


@dataclass(frozen=True, slots=True)
class PositionUpdate:
    """Infrequent position-only update (1 Hz, to the Others set)."""

    sender_id: int
    frame: int
    sequence: int
    snapshot: AvatarSnapshot  # position_only() form
    signature: Signature | None = None


@dataclass(frozen=True, slots=True)
class GuidanceMessage:
    """Dead-reckoning guidance (1 Hz, to VS subscribers)."""

    sender_id: int
    frame: int
    sequence: int
    snapshot: AvatarSnapshot
    prediction: GuidancePrediction
    signature: Signature | None = None


@dataclass(frozen=True, slots=True)
class SubscriptionRequest:
    """p subscribes to target (VS or IS class) — routed p → proxy(p) → proxy(target).

    The target itself never sees who subscribed ("players are not informed
    about subscriptions to them").
    """

    sender_id: int
    target_id: int
    kind: str  # SUB_VISION or SUB_INTEREST
    frame: int
    sequence: int
    signature: Signature | None = None

    def __post_init__(self) -> None:
        if self.kind not in (SUB_VISION, SUB_INTEREST):
            raise ValueError(f"unknown subscription kind {self.kind!r}")


@dataclass(frozen=True, slots=True)
class KillClaim:
    """An interaction claim: sender asserts he killed/hit the victim."""

    sender_id: int
    victim_id: int
    frame: int
    sequence: int
    weapon: str
    claimed_distance: float
    signature: Signature | None = None


@dataclass(frozen=True, slots=True)
class ProjectileSpawn:
    """Announcement of a short-lived object the player created.

    "Players are in charge of the short-lived objects they create, in
    addition to their avatars.  Hence, such objects are checked by proxies
    and other players as well."  A projectile kill claim must reference a
    previously announced spawn whose trajectory actually reaches the
    victim ("checking that ... a rocket was effectively fired").
    """

    sender_id: int
    frame: int
    sequence: int
    weapon: str
    origin: "Vec3"
    velocity: "Vec3"
    signature: Signature | None = None


@dataclass(frozen=True, slots=True)
class HandoffSummary:
    """One proxy's summary of its client's state over its tenure."""

    player_id: int
    epoch: int
    proxy_id: int
    last_snapshot: AvatarSnapshot | None
    update_count: int
    suspicion_flags: int  # count of suspicious ratings the proxy issued


@dataclass(frozen=True, slots=True)
class HandoffMessage:
    """Old proxy → new proxy at epoch boundaries.

    Carries the subscriber lists (so dissemination continues seamlessly)
    plus state summaries of up to ``handoff_depth`` previous tenures
    ("a proxy also embeds the summary it has received from its
    predecessor").
    """

    sender_id: int  # the outgoing proxy
    player_id: int  # whose traffic is being handed off
    epoch: int  # the epoch that is ending
    sequence: int
    interest_subscribers: frozenset[int]
    vision_subscribers: frozenset[int]
    summaries: tuple[HandoffSummary, ...] = field(default_factory=tuple)
    signature: Signature | None = None


@dataclass(frozen=True, slots=True)
class AckMessage:
    """Hop-by-hop receipt for a critical low-rate message.

    The reliable-delivery layer (``WatchmenConfig.reliable_delivery``)
    retransmits an ackable message with capped exponential backoff until
    the receiving hop acks ``(acked_sender_id, acked_sequence)``.  State
    updates stay fire-and-forget per the paper; only the messages in
    :data:`ACKABLE_TYPES` are covered.  Acks are themselves never acked.
    """

    sender_id: int
    frame: int
    sequence: int
    acked_sender_id: int
    acked_sequence: int
    signature: Signature | None = None


@dataclass(frozen=True, slots=True)
class MisbehaviorEvidence:
    """Self-certifying proof that ``accused_id`` equivocated.

    Carries *both* conflicting updates — each validly signed by the
    accused, same sequence, differing payloads.  Under signature
    unforgeability nobody can fabricate this about an honest player
    (honest senders never reuse a sequence for different payloads;
    retransmissions reuse the identical signed bytes), so one verified
    evidence message convicts on its own: receivers re-verify both inner
    signatures and need no quorum of accusers.
    """

    sender_id: int  # the witness reporting the conflict
    accused_id: int
    frame: int
    sequence: int
    first: StateUpdate
    second: StateUpdate
    signature: Signature | None = None


GameMessage = Union[
    StateUpdate,
    PositionUpdate,
    GuidanceMessage,
    SubscriptionRequest,
    KillClaim,
    ProjectileSpawn,
    HandoffMessage,
    RemovalProposal,
    AckMessage,
    MisbehaviorEvidence,
]

#: The critical low-rate messages covered by the ack/retry layer: losing
#: one silently degrades the protocol (a missed subscription black-holes a
#: view; a missed handoff strands a client; a missed removal vote stalls
#: the quorum).  Lint rule P205 cross-checks this registry against the
#: GameMessage union.
ACKABLE_TYPES: tuple[type, ...] = (
    SubscriptionRequest,
    KillClaim,
    RemovalProposal,
    HandoffMessage,
    MisbehaviorEvidence,
)


def signable_bytes(message: GameMessage) -> bytes:
    """A canonical byte encoding of a message (without its signature).

    Used both to sign and to verify; any field change (a tampering proxy)
    changes these bytes and invalidates the signature.  The encoding is
    the binary wire frame minus the top-level signature field — the bytes
    a node signs are literally the bytes it transmits, so there is one
    canonical form per message and nothing to re-serialize on verify.
    Nested signatures (the signed updates inside MisbehaviorEvidence)
    stay covered: the evidence's meaning is exactly "these two signed
    messages exist", so the proofs are part of the signed bytes.
    """
    # Deferred import: repro.core.wire imports this module for the
    # registry, so a top-level import would be circular.
    global _encode_signable
    if _encode_signable is None:
        from repro.core.wire import encode_signable as _encode_signable
    return _encode_signable(message)


_encode_signable = None


def message_size_bits(message: GameMessage, config: WatchmenConfig) -> int:
    """Nominal wire size of a message, per the paper's size model."""
    if isinstance(message, StateUpdate):
        if message.delta_fields:
            body = config.delta_base_bits + sum(
                config.delta_field_bits.get(name, 32)
                for name in message.delta_fields
            )
            body = min(body, config.state_update_bits)
        else:
            body = config.state_update_bits
    elif isinstance(message, PositionUpdate):
        body = config.position_update_bits
    elif isinstance(message, GuidanceMessage):
        body = config.guidance_bits
    elif isinstance(message, SubscriptionRequest):
        body = config.subscription_bits
    elif isinstance(message, KillClaim):
        body = config.subscription_bits  # comparable small claim record
    elif isinstance(message, RemovalProposal):
        body = config.subscription_bits  # tiny signed vote
    elif isinstance(message, AckMessage):
        body = config.subscription_bits  # tiny signed receipt
    elif isinstance(message, ProjectileSpawn):
        body = config.position_update_bits  # origin + velocity + weapon
    elif isinstance(message, MisbehaviorEvidence):
        # Two full signed updates plus a small claim record around them.
        body = (
            2 * (config.state_update_bits + config.signature_bits)
            + config.subscription_bits
        )
    elif isinstance(message, HandoffMessage):
        entries = (
            1
            + len(message.interest_subscribers)
            + len(message.vision_subscribers)
            + len(message.summaries)
        )
        body = config.handoff_bits_per_entry * entries
    else:
        raise TypeError(f"unknown message type {type(message).__name__}")
    signed = config.signature_bits if message.signature is not None else 0
    return config.header_bits + body + signed


def message_size_bytes(message: GameMessage, config: WatchmenConfig) -> int:
    """Size in whole bytes (what the transport charges)."""
    return (message_size_bits(message, config) + 7) // 8
