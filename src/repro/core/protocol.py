"""WatchmenSession: a full protocol run of N nodes over the simulated WAN.

This is the reproduction's equivalent of the paper's replay engine: it
takes a recorded :class:`~repro.game.trace.GameTrace`, instantiates one
:class:`~repro.core.node.WatchmenNode` per player, wires them through the
:class:`~repro.net.transport.DatagramNetwork` (latency matrix + loss +
jitter), and replays the game frame by frame — "generate the same network
traffic repeatedly and under different networking and proxy architectures
to measure different aspects of the performance".

Outputs: update-age distributions (Figure 7), bandwidth per node, every
cheat rating emitted by every verifier (Figure 6), and the reputation
board's state.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable

from repro.core.config import MAX_USEFUL_AGE_FRAMES, WatchmenConfig
from repro.core.messages import GameMessage, GuidanceMessage, StateUpdate
from repro.core.node import HonestBehaviour, NodeBehaviour, WatchmenNode
from repro.core.proxy import ProxySchedule
from repro.core.reputation import ReputationBoard
from repro.core.verification import CheatRating
from repro.crypto.signatures import HmacSigner
from repro.faults.byzantine import ByzantineBehaviour
from repro.faults.injector import FaultInjector
from repro.faults.schedule import FaultSchedule
from repro.game.gamemap import GameMap, make_longest_yard
from repro.game.avatar import AvatarSnapshot
from repro.game.interest import LosCache
from repro.game.trace import GameTrace, ShotEvent
from repro.net.events import EventQueue
from repro.net.latency import LatencyMatrix, king_like
from repro.net.transport import Datagram, DatagramNetwork, NetworkConfig
from repro.obs.registry import MetricsRegistry, get_registry
from repro.obs.stats import nearest_rank

__all__ = ["SessionReport", "WatchmenSession"]


@dataclass
class SessionReport:
    """Aggregated observations from one session run."""

    num_players: int
    num_frames: int
    age_histogram: dict[int, int] = field(default_factory=dict)
    age_histogram_by_kind: dict[str, dict[int, int]] = field(default_factory=dict)
    mean_upload_kbps: float = 0.0
    max_upload_kbps: float = 0.0
    messages_sent: int = 0
    #: Every datagram that died anywhere: in flight, over budget, or NAT.
    messages_lost: int = 0
    #: The same deaths, broken down (loss | budget | nat | partition | crashed).
    dropped_by_cause: dict[str, int] = field(default_factory=dict)
    ratings: list[CheatRating] = field(default_factory=list)
    banned: set[int] = field(default_factory=set)
    server_upload_kbps: dict[int, float] = field(default_factory=dict)
    view_errors: list[float] = field(default_factory=list)
    #: node -> frame it crash-stopped (fault injection), if any
    crashed: dict[int, int] = field(default_factory=dict)
    #: total proxy failovers performed across all nodes
    proxy_failovers: int = 0
    #: Byzantine hardening telemetry (all zero with the gate off):
    #: equivocation detections across all witnesses, evidence-backed
    #: convictions recorded, quarantine impositions, and messages the
    #: protocol layer itself refused (tamper + quarantine drops).
    equivocations_detected: int = 0
    evidence_convictions: int = 0
    quarantines: int = 0
    rejected_by_protocol: int = 0

    def view_error_stats(self) -> dict[str, float]:
        """Mean / median / p95 rendered-view error (game units)."""
        if not self.view_errors:
            return {}
        ordered = sorted(self.view_errors)
        return {
            "mean": sum(ordered) / len(ordered),
            "median": ordered[len(ordered) // 2],
            "p95": nearest_rank(ordered, 0.95, presorted=True),
        }

    def age_pdf(self) -> dict[int, float]:
        """P(age = k frames) over all received updates — Figure 7's PDF."""
        total = sum(self.age_histogram.values())
        if total == 0:
            return {}
        return {
            age: count / total for age, count in sorted(self.age_histogram.items())
        }

    def stale_fraction(self, max_useful_age: int = MAX_USEFUL_AGE_FRAMES) -> float:
        """Fraction of received updates older than the Quake bound (loss)."""
        total = sum(self.age_histogram.values())
        if total == 0:
            return 0.0
        stale = sum(
            count for age, count in self.age_histogram.items() if age >= max_useful_age
        )
        return stale / total

    def ratings_about(self, subject_id: int) -> list[CheatRating]:
        return [r for r in self.ratings if r.subject_id == subject_id]


class WatchmenSession:
    """Wire a trace, a latency model and (optionally) cheats; then run."""

    def __init__(
        self,
        trace: GameTrace,
        game_map: GameMap | None = None,
        config: WatchmenConfig | None = None,
        latency: LatencyMatrix | None = None,
        network_config: NetworkConfig | None = None,
        behaviours: dict[int, NodeBehaviour] | None = None,
        reputation: ReputationBoard | None = None,
        signer: HmacSigner | None = None,
        departures: dict[int, int] | None = None,
        faults: FaultSchedule | None = None,
        view_error_stride: int | None = None,
        servers: int = 0,
        server_only_proxies: bool = True,
        server_weight: int = 4,
        proxy_pool: list[int] | None = None,
        pool_weights: dict[int, int] | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.trace = trace
        self.game_map = game_map or make_longest_yard()
        self.config = config or WatchmenConfig()
        self.reputation = reputation or ReputationBoard()
        #: Observability: one registry for the whole session (nodes,
        #: schedule, transport).  Defaults to the process-wide registry,
        #: which is disabled unless a caller swapped an enabled one in.
        self.obs = registry if registry is not None else get_registry()
        self._hist_frame = self.obs.histogram("session.frame_seconds")
        #: player id -> frame at which he abruptly leaves (churn injection)
        self.departures = dict(departures or {})
        #: sample the rendered-view error every k frames (None = off)
        self.view_error_stride = view_error_stride
        self.view_errors: list[float] = []
        roster = trace.player_ids()
        if len(roster) < 2:
            raise ValueError("a session needs at least two players")
        if servers < 0:
            raise ValueError("servers must be non-negative")
        # Hybrid architecture (Section VI): trusted game servers join the
        # proxy pool — exclusively (every player proxied by a server) or
        # weighted alongside the players.
        self.server_ids = [max(roster) + 1 + i for i in range(servers)]

        total_endpoints = len(roster) + len(self.server_ids)
        self.queue = EventQueue()
        self.network = DatagramNetwork(
            self.queue,
            latency or king_like(total_endpoints, seed=trace.seed),
            network_config or NetworkConfig(seed=trace.seed),
            registry=self.obs,
        )
        if self.network.latency.size < total_endpoints:
            raise ValueError("latency matrix too small for players + servers")
        if self.server_ids:
            if server_only_proxies:
                pool = list(self.server_ids)
                weights = None
            else:
                pool = roster + self.server_ids
                weights = {s: server_weight for s in self.server_ids}
            self.schedule = ProxySchedule(
                roster,
                common_seed=self.config.common_seed,
                proxy_period_frames=self.config.proxy_period_frames,
                proxy_pool=pool,
                pool_weights=weights,
                infrastructure=self.server_ids,
                registry=self.obs,
            )
        else:
            self.schedule = ProxySchedule(
                roster,
                common_seed=self.config.common_seed,
                proxy_period_frames=self.config.proxy_period_frames,
                proxy_pool=proxy_pool,
                pool_weights=pool_weights,
                registry=self.obs,
            )
        # Fault injection (robustness experiments): built after the proxy
        # schedule so declarative proxy-kill faults can be resolved to
        # concrete victims.  None (or an empty schedule) leaves the run
        # bit-identical to a fault-free one — the injector draws from its
        # own RNG lane and only when faults are active.
        self.fault_injector: FaultInjector | None = None
        if faults is not None:
            self.fault_injector = FaultInjector(faults)
            self.fault_injector.resolve(self.schedule, self.config)
            self.network.attach_faults(self.fault_injector)
        #: node -> frame it crash-stopped during this run
        self.crashed: dict[int, int] = {}
        #: optional per-frame hooks: ``on_frame_begin`` fires before any
        #: node runs (the tape recorder stamps frame boundaries here),
        #: ``on_frame_end`` after (chaos harness samples staleness there)
        self.on_frame_begin: Callable[[int], None] | None = None
        self.on_frame_end: Callable[[int], None] | None = None

        self.signer = signer or HmacSigner(signature_bits=self.config.signature_bits)
        for player_id in roster + self.server_ids:
            self.signer.register(player_id)

        #: One symmetric LOS cache shared by every node's planner for the
        #: current frame (cleared at the top of each tick).  Node views
        #: differ (dead reckoning), so entries are keyed by exact eye
        #: positions — sharing never changes results, only avoids repeats.
        self.los_cache = LosCache(self.game_map)

        behaviours = dict(behaviours or {})
        #: Players running under a Byzantine fault entry this run (the
        #: chaos harness separates their removals from false evictions).
        self.byzantine_ids: set[int] = set()
        if faults is not None and faults.byzantine:
            self.byzantine_ids = set(faults.byzantine_node_ids())
            for player_id in self.byzantine_ids:
                if player_id not in roster:
                    raise ValueError(
                        f"byzantine fault names unknown player {player_id}"
                    )
                behaviours[player_id] = ByzantineBehaviour(
                    inner=behaviours.get(player_id) or HonestBehaviour(),
                    faults=faults.byzantine_for(player_id),
                    seed=faults.seed + player_id,
                )
        self.nodes: dict[int, WatchmenNode] = {}
        for player_id in roster:
            node = WatchmenNode(
                player_id=player_id,
                roster=roster,
                game_map=self.game_map,
                config=self.config,
                schedule=self.schedule,
                signer=self.signer,
                send=self.network.send,
                behaviour=behaviours.get(player_id),
                rating_sink=self.reputation.submit_rating,
                registry=self.obs,
                los_cache=self.los_cache,
            )
            behaviour = behaviours.get(player_id)
            if isinstance(behaviour, ByzantineBehaviour):
                behaviour.bind(node)
            if self.config.byzantine_hardening:
                # Protocol-layer rejections (tamper, quarantine) flow into
                # the transport's unified drop books so messages_lost and
                # dropped_by_cause stay one coherent account.
                node.protocol_drop = self.network.count_protocol_drop
            # Seed frame-0 knowledge: FPS "players are usually aware of all
            # entities of the game" when the match starts.
            node.known = dict(trace.frames[0])
            node.audience_oracle = self._audience_oracle_for(player_id)
            node.own_future = self._future_oracle_for(player_id)
            self.nodes[player_id] = node
            self.network.register(
                player_id,
                lambda datagram, n=node: self._deliver(n, datagram),
            )

        for server_id in self.server_ids:
            server_node = WatchmenNode(
                player_id=server_id,
                roster=roster,
                game_map=self.game_map,
                config=self.config,
                schedule=self.schedule,
                signer=self.signer,
                send=self.network.send,
                rating_sink=self.reputation.submit_rating,
                is_server=True,
                registry=self.obs,
                los_cache=self.los_cache,
            )
            server_node.known = dict(trace.frames[0])
            self.nodes[server_id] = server_node
            self.network.register(
                server_id,
                lambda datagram, n=server_node: self._deliver(n, datagram),
            )

        self._kills_by_frame: dict[int, list] = {}
        for kill in trace.kills:
            self._kills_by_frame.setdefault(kill.frame, []).append(kill)
        self._shots_by_frame: dict[int, list] = {}
        for shot in trace.shots:
            self._shots_by_frame.setdefault(shot.frame, []).append(shot)

    # ------------------------------------------------------------------

    @staticmethod
    def _deliver(node: WatchmenNode, datagram: Datagram) -> None:
        payload = datagram.payload
        if isinstance(payload, tuple):  # defensive: no tuple payloads expected
            raise TypeError("unexpected tuple payload")
        node.on_message(datagram.src, payload)  # type: ignore[arg-type]

    def _future_oracle_for(
        self, player_id: int
    ) -> Callable[[int], AvatarSnapshot | None]:
        """The player's own upcoming movement (his input intentions)."""

        def future(frame: int) -> AvatarSnapshot | None:
            if 0 <= frame < self.trace.num_frames:
                return self.trace.frames[frame][player_id]
            return None

        return future

    def _audience_oracle_for(
        self, player_id: int
    ) -> Callable[[int, GameMessage], list[int]]:
        """Relaxed-first-hop audience: read the live subscriber lists.

        Stands in for the proxy piggybacking the subscriber list back to
        the publisher, which the paper allows "if bandwidth allows it ...
        at the cost of lower security".
        """

        def audience(publisher_id: int, message: GameMessage) -> list[int]:
            frame = self.nodes[publisher_id].current_frame
            epoch = self.config.epoch_of_frame(frame)
            proxy_id = self.schedule.proxy_of(publisher_id, epoch)
            proxy_node = self.nodes.get(proxy_id)
            if proxy_node is None:
                return []
            state = proxy_node._clients.get(publisher_id)
            if state is None:
                return []
            if isinstance(message, StateUpdate):
                return sorted(state.table.interest_subscribers(frame))
            if isinstance(message, GuidanceMessage):
                return sorted(state.table.vision_subscribers(frame))
            return []

        return audience

    # ------------------------------------------------------------------

    def run(self, max_frames: int | None = None) -> SessionReport:
        """Replay the trace through the protocol and aggregate the metrics."""
        num_frames = self.trace.num_frames
        if max_frames is not None:
            num_frames = min(num_frames, max_frames)
        dt = self.config.frame_seconds

        for frame in range(num_frames):
            self.queue.schedule_at(frame * dt, lambda f=frame: self._tick(f))
        self.queue.run()
        return self._report(num_frames)

    def _tick(self, frame: int) -> None:
        with self._hist_frame.time():
            self._tick_inner(frame)

    def _tick_inner(self, frame: int) -> None:
        if self.on_frame_begin is not None:
            self.on_frame_begin(frame)

        # New frame: reset the shared LOS memo before any planner runs.
        self.los_cache.begin_frame(frame)

        # Abrupt departures: the machine is gone — no more sends, no more
        # receives.  The remaining nodes must detect and agree on it.
        for player_id, depart_frame in self.departures.items():
            if frame == depart_frame:
                self.network.unregister(player_id)

        # Scheduled crash-stops (fault injection) behave identically to
        # departures from the survivors' point of view.
        if self.fault_injector is not None:
            for node_id in self.fault_injector.begin_frame(frame):
                self.crashed[node_id] = frame
                self.network.unregister(node_id)

        # Feed game interactions first: the killer publishes a claim this
        # frame; both parties update their interaction-recency trackers.
        for shot in self._shots_by_frame.get(frame, ()):
            self.nodes[shot.shooter_id].note_interaction(shot.target_id, frame)
            self.nodes[shot.target_id].note_interaction(shot.shooter_id, frame)
            self._announce_projectile_if_any(frame, shot)
        for kill in self._kills_by_frame.get(frame, ()):
            self.nodes[kill.killer_id].claim_kill(
                frame, kill.victim_id, kill.weapon, kill.distance
            )
            self.nodes[kill.victim_id].note_interaction(kill.killer_id, frame)

        snapshots = self.trace.frames[frame]
        for player_id in self.trace.player_ids():
            depart_frame = self.departures.get(player_id)
            if depart_frame is not None and frame >= depart_frame:
                continue
            if player_id in self.crashed:
                continue
            self.nodes[player_id].on_frame(frame, snapshots[player_id])
        for server_id in self.server_ids:
            if server_id in self.crashed:
                continue
            self.nodes[server_id].on_frame(frame)

        if self.view_error_stride and frame % self.view_error_stride == 0:
            self._sample_view_error(frame, snapshots)

        if self.on_frame_end is not None:
            self.on_frame_end(frame)

    def _sample_view_error(
        self, frame: int, snapshots: dict[int, AvatarSnapshot]
    ) -> None:
        """Lag sample: rendered estimate vs true position, all pairs."""
        for observer_id in self.trace.player_ids():
            if observer_id in self.departures and frame >= self.departures[observer_id]:
                continue
            if observer_id in self.crashed:
                continue
            node = self.nodes[observer_id]
            for subject_id, truth in snapshots.items():
                if subject_id == observer_id or not truth.alive:
                    continue
                if subject_id in self.crashed:
                    continue  # the trace keeps moving him; the game lost him
                estimate = node.estimate_of(subject_id, frame)
                if estimate is None:
                    continue
                self.view_errors.append(
                    estimate.position.distance_to(truth.position)
                )

    def _announce_projectile_if_any(self, frame: int, shot: ShotEvent) -> None:
        """Projectile shots create short-lived objects the shooter announces."""
        from repro.game.weapons import WEAPONS

        spec = WEAPONS.get(shot.weapon)
        if spec is None or spec.projectile_speed is None:
            return
        shooter = self.trace.frames[frame][shot.shooter_id]
        target = self.trace.frames[frame][shot.target_id]
        direction = (target.position - shooter.position).normalized()
        self.nodes[shot.shooter_id].announce_projectile(
            frame,
            shot.weapon,
            shooter.position,
            direction * spec.projectile_speed,
        )

    # ------------------------------------------------------------------

    def _report(self, num_frames: int) -> SessionReport:
        report = SessionReport(
            num_players=len(self.nodes) - len(self.server_ids),
            num_frames=num_frames,
        )
        total_ages: Counter[int] = Counter()
        by_kind: dict[str, Counter[int]] = {}
        for node in self.nodes.values():
            for kind, age in node.metrics.update_ages:
                total_ages[age] += 1
                by_kind.setdefault(kind, Counter())[age] += 1
            report.ratings.extend(node.metrics.ratings)
        report.age_histogram = dict(total_ages)
        report.age_histogram_by_kind = {
            kind: dict(counter) for kind, counter in by_kind.items()
        }
        player_ids = self.trace.player_ids()
        uploads = [self.network.meter.upload_kbps(p) for p in player_ids]
        report.mean_upload_kbps = sum(uploads) / len(uploads)
        report.max_upload_kbps = max(uploads)
        report.server_upload_kbps = {
            server: self.network.meter.upload_kbps(server)
            for server in self.server_ids
        }
        report.messages_sent = self.network.sent
        # Unified accounting: a message refused locally (budget, NAT) is
        # as lost to the protocol as one dropped in flight.
        report.messages_lost = (
            self.network.lost
            + self.network.dropped_over_budget
            + self.network.blocked_by_nat
            + self.network.rejected_by_protocol
        )
        report.rejected_by_protocol = self.network.rejected_by_protocol
        report.equivocations_detected = sum(
            len(node.equivocation_events) for node in self.nodes.values()
        )
        report.quarantines = sum(
            len(node.quarantine_events) for node in self.nodes.values()
        )
        report.evidence_convictions = sum(
            len(node.membership.convicted) for node in self.nodes.values()
        )
        report.dropped_by_cause = dict(self.network.dropped_by_cause)
        report.crashed = dict(self.crashed)
        report.proxy_failovers = sum(
            len(node.failover_events) for node in self.nodes.values()
        )
        report.banned = self.reputation.banned()
        report.view_errors = list(self.view_errors)
        # Bandwidth gauges: the paper's headline per-node kbps, exported
        # through the registry so snapshots carry them.
        self.obs.gauge("session.players").set(report.num_players)
        self.obs.gauge("session.frames").set(num_frames)
        self.obs.gauge("net.upload_kbps.mean").set(report.mean_upload_kbps)
        self.obs.gauge("net.upload_kbps.max").set(report.max_upload_kbps)
        for server, kbps in report.server_upload_kbps.items():
            self.obs.gauge(f"net.upload_kbps.server.{server}").set(kbps)
        return report
