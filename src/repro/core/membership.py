"""Membership management: churn detection and agreed removals.

Section VI ("Churn & NAT"): "updates sent between players also act as a
heartbeat mechanism that easily identifies the players that have been
disconnected or left.  These nodes are removed in the next round, through
an agreement protocol, from the proxy pool."

This module implements that round:

1. **Heartbeat tracking** — every update a node consumes about player X
   refreshes ``last_heard[X]``; the 1 Hz position updates guarantee every
   node hears about every live player at least once a second.
2. **Proposal broadcast** — a node that has heard nothing about X for
   ``silence_threshold_frames`` broadcasts a signed
   :class:`RemovalProposal`.
3. **Quorum** — when a node has seen proposals about X from a majority of
   the (remaining) roster, the removal is *agreed*; it becomes effective
   at a deterministic future epoch boundary (``effective_delay_epochs``
   after the quorum epoch), giving stragglers time to reach the same
   quorum — proposals propagate within a frame or two, so one epoch of
   delay suffices — and every honest node swaps to the same reduced
   :class:`~repro.core.proxy.ProxySchedule` at the same frame.

A malicious minority cannot evict an honest player: proposals are signed,
counted once per proposer, and a quorum requires a majority — while a
genuinely departed player is proposed by everyone, because everyone stops
hearing from him (Watchmen's default position updates are unforgeable
heartbeats).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.signatures import Signature

__all__ = ["RemovalProposal", "MembershipView"]


@dataclass(frozen=True, slots=True)
class RemovalProposal:
    """A signed vote that ``subject_id`` has left the game."""

    sender_id: int
    subject_id: int
    frame: int
    sequence: int
    signature: Signature | None = None  # same envelope as every signed message


@dataclass
class MembershipView:
    """One node's view of who is (still) in the game."""

    roster: list[int]
    silence_threshold_frames: int = 60  # 3 s without any update
    effective_delay_epochs: int = 1
    #: Infrastructure (hybrid servers) never publishes avatar updates and
    #: is exempt from heartbeat-based removal.
    exempt: frozenset = frozenset()
    _last_heard: dict[int, int] = field(default_factory=dict)
    _proposals: dict[int, set[int]] = field(default_factory=dict)  # subject -> proposers
    _own_proposals: set[int] = field(default_factory=set)
    _scheduled_removals: dict[int, int] = field(default_factory=dict)  # subject -> epoch
    removed: set[int] = field(default_factory=set)
    #: Players scheduled for removal on *verified misbehavior evidence*
    #: (signed equivocation) rather than silence.  Unlike silence-based
    #: removals, a conviction is never rescinded by hearing from the
    #: subject — an equivocator keeps publishing, that is the attack.
    convicted: set[int] = field(default_factory=set)

    def __post_init__(self) -> None:
        if len(self.roster) < 2:
            raise ValueError("membership needs at least two players")
        for player in self.roster:
            self._last_heard[player] = 0

    # ---- heartbeats --------------------------------------------------------

    def heard_from(self, player_id: int, frame: int) -> None:
        """Any consumed update about a player refreshes his heartbeat.

        A fresh, verified message also *rescinds* accumulated silence
        evidence: proposals are votes that a player has left, and his own
        live voice refutes them.  Without this, a healed partition leaves
        quorums armed against players whose traffic merely routed through
        the cut — the false-eviction failure the chaos suite gates on.
        A removal already applied is never undone (roster changes stay
        deterministic); only pending suspicion is cleared.
        """
        if player_id in self._last_heard:
            self._last_heard[player_id] = max(
                self._last_heard[player_id], frame
            )
            if player_id not in self.removed and player_id not in self.convicted:
                self._proposals.pop(player_id, None)
                self._own_proposals.discard(player_id)
                self._scheduled_removals.pop(player_id, None)

    def last_heard_frame(self, player_id: int) -> int | None:
        """Latest frame any update about a player was consumed (None if
        the player is not tracked).  Frame 0 means "never heard" — every
        roster member starts there.  The proxy-failover layer reads this
        to detect a crashed proxy well before the removal threshold."""
        return self._last_heard.get(player_id)

    def silent_players(self, frame: int, self_id: int) -> list[int]:
        """Players this node has heard nothing about for too long."""
        return [
            player
            for player, last in self._last_heard.items()
            if player not in (self_id,)
            and player not in self.removed
            and player not in self.exempt
            and frame - last > self.silence_threshold_frames
        ]

    # ---- proposals & quorum ---------------------------------------------------

    def should_propose(self, subject_id: int) -> bool:
        """Propose each departed player at most once."""
        return (
            subject_id not in self._own_proposals
            and subject_id not in self.removed
        )

    def note_own_proposal(self, subject_id: int) -> None:
        self._own_proposals.add(subject_id)

    def record_proposal(
        self, proposer_id: int, subject_id: int, frame: int, epoch: int
    ) -> bool:
        """Count a (verified) proposal; True when quorum was just reached.

        A quorum only *schedules* the removal when this node's own view
        corroborates the silence: under heavy correlated loss (all of a
        player's updates route through one proxy) a majority can cross
        the silence threshold while this node still hears the subject —
        votes alone must not evict a player the local heartbeat refutes.
        The votes stay counted; the next proposal re-checks, and a
        genuinely dead player keeps failing the liveness test.
        """
        if subject_id in self.removed or subject_id in self._scheduled_removals:
            return False
        if proposer_id not in self.current_roster():
            return False
        voters = self._proposals.setdefault(subject_id, set())
        if proposer_id in voters:
            return False
        voters.add(proposer_id)
        locally_silent = (
            frame - self._last_heard.get(subject_id, 0)
            > self.silence_threshold_frames
        )
        if len(voters) >= self.quorum_size() and locally_silent:
            self._scheduled_removals[subject_id] = (
                epoch + self.effective_delay_epochs
            )
            return True
        return False

    def convict(self, subject_id: int, epoch_due: int) -> bool:
        """Schedule a quorum-free removal backed by self-certifying evidence.

        Silence proposals need a majority because any minority could lie;
        equivocation evidence carries its own proof (two valid signatures,
        one sequence, two payloads), so a single verified message suffices.
        Idempotent per subject: the first conviction pins the due epoch and
        repeats are ignored, so duplicate or reordered evidence cannot
        move the removal.  Returns True when the conviction was recorded.
        """
        if subject_id in self.removed or subject_id in self.convicted:
            return False
        if subject_id not in self.roster:
            return False
        self.convicted.add(subject_id)
        self._scheduled_removals[subject_id] = epoch_due
        return True

    def quorum_size(self) -> int:
        """Majority of the players still considered present."""
        return len(self.current_roster()) // 2 + 1

    def current_roster(self) -> list[int]:
        return [p for p in self.roster if p not in self.removed]

    # ---- epoch processing ----------------------------------------------------

    def removals_due(self, epoch: int) -> set[int]:
        """Agreed removals whose effective epoch has arrived."""
        return {
            subject
            for subject, due_epoch in self._scheduled_removals.items()
            if epoch >= due_epoch
        }

    def apply_removals(self, epoch: int) -> set[int]:
        """Apply due removals; returns the set applied (may be empty)."""
        due = self.removals_due(epoch)
        for subject in due:
            self.removed.add(subject)
            del self._scheduled_removals[subject]
            self._proposals.pop(subject, None)
        return due

    def pending_removals(self) -> dict[int, int]:
        return dict(self._scheduled_removals)

    def proposal_count(self, subject_id: int) -> int:
        return len(self._proposals.get(subject_id, ()))
