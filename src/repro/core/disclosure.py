"""Information-disclosure accounting (Figure 4 & the sniffing analysis).

The paper measures "the joint information obtained by a coalition of
colluding cheaters about other players", assuming the worst case where
"any information available to one cheating player is immediately available
to all colluding partners".  Per honest player the coalition ends up in
exactly one of six categories (the Figure 4 stack, most→least
informative):

``COMPLETE`` (some colluder is his proxy) → ``FREQ_DR`` (frequent state
updates *and* dead-reckoning guidance) → ``FREQ`` → ``DR`` → ``INFREQ``
(position-only) → ``NOTHING``.

:func:`coalition_category` folds per-member levels into the joint
category; architectures only need to say which *per-observer* level each
player grants each observer (see :mod:`repro.baselines` and
:func:`watchmen_observer_level`).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "InfoLevel",
    "ExposureCategory",
    "coalition_category",
    "watchmen_observer_level",
    "ExposureHistogram",
]


class InfoLevel:
    """What one observer receives about one subject, per architecture."""

    COMPLETE = "complete"  # proxy-grade: every message, subscriptions
    FREQUENT = "frequent"  # per-frame full state updates (IS)
    DEAD_RECKONING = "dr"  # 1 Hz guidance with predictions (VS)
    INFREQUENT = "infrequent"  # 1 Hz position-only (Others)
    NOTHING = "nothing"  # no information at all (client-server non-PVS)

    ALL = (COMPLETE, FREQUENT, DEAD_RECKONING, INFREQUENT, NOTHING)


class ExposureCategory:
    """Joint coalition knowledge — the Figure 4 stacked-histogram bins."""

    COMPLETE = "complete"
    FREQ_DR = "freq+dr"
    FREQ = "freq"
    DR = "dr"
    INFREQ = "infreq"
    NOTHING = "nothing"

    #: Most → least informative, the stacking order of Figure 4.
    ORDER = (COMPLETE, FREQ_DR, FREQ, DR, INFREQ, NOTHING)


def coalition_category(levels: list[str]) -> str:
    """Fold the per-colluder info levels about one honest player.

    Frequent updates and guidance "complement each other, even though
    frequent updates are more detailed they are not directly comparable",
    hence the distinct FREQ_DR category when the coalition holds both.
    """
    if not levels:
        return ExposureCategory.NOTHING
    unknown = set(levels) - set(InfoLevel.ALL)
    if unknown:
        raise ValueError(f"unknown info levels {sorted(unknown)}")
    if InfoLevel.COMPLETE in levels:
        return ExposureCategory.COMPLETE
    has_frequent = InfoLevel.FREQUENT in levels
    has_dr = InfoLevel.DEAD_RECKONING in levels
    if has_frequent and has_dr:
        return ExposureCategory.FREQ_DR
    if has_frequent:
        return ExposureCategory.FREQ
    if has_dr:
        return ExposureCategory.DR
    if InfoLevel.INFREQUENT in levels:
        return ExposureCategory.INFREQ
    return ExposureCategory.NOTHING


def watchmen_observer_level(
    observer_id: int,
    subject_id: int,
    observer_interest: frozenset[int],
    observer_vision: frozenset[int],
    proxy_of_subject: int,
) -> str:
    """The info level a single Watchmen observer has about a subject.

    Proxy duty dominates ("proxies [have complete information] about the
    players they are in charge of"); otherwise the observer's IS/VS
    membership decides, and everyone else gets the infrequent default.
    """
    if observer_id == subject_id:
        raise ValueError("observer and subject must differ")
    if proxy_of_subject == observer_id:
        return InfoLevel.COMPLETE
    if subject_id in observer_interest:
        return InfoLevel.FREQUENT
    if subject_id in observer_vision:
        return InfoLevel.DEAD_RECKONING
    return InfoLevel.INFREQUENT


@dataclass
class ExposureHistogram:
    """Counts of honest players per exposure category, averaged over frames."""

    counts: dict[str, float]

    @staticmethod
    def empty() -> "ExposureHistogram":
        return ExposureHistogram({c: 0.0 for c in ExposureCategory.ORDER})

    def add(self, category: str, weight: float = 1.0) -> None:
        if category not in self.counts:
            raise ValueError(f"unknown category {category!r}")
        self.counts[category] += weight

    def normalized(self) -> dict[str, float]:
        """Proportions of honest players per category (sums to 1)."""
        total = sum(self.counts.values())
        if total <= 0:
            return {c: 0.0 for c in ExposureCategory.ORDER}
        return {c: self.counts[c] / total for c in ExposureCategory.ORDER}

    def scaled(self, factor: float) -> "ExposureHistogram":
        return ExposureHistogram(
            {c: v * factor for c, v in self.counts.items()}
        )

    def merged(self, other: "ExposureHistogram") -> "ExposureHistogram":
        return ExposureHistogram(
            {
                c: self.counts.get(c, 0.0) + other.counts.get(c, 0.0)
                for c in ExposureCategory.ORDER
            }
        )
