"""Watchmen core: the paper's contribution.

The one-stop import surface:

- :class:`~repro.core.config.WatchmenConfig` — all protocol tunables;
- :class:`~repro.core.protocol.WatchmenSession` — run a trace through the
  full protocol over a simulated WAN and collect metrics;
- :class:`~repro.core.proxy.ProxySchedule` — random/verifiable/dynamic
  proxy assignment;
- :mod:`~repro.core.verification` — sanity-check verifiers and ratings;
- :mod:`~repro.core.reputation` — reputation & banning backends;
- :mod:`~repro.core.disclosure` — information-exposure accounting.

Re-exports resolve lazily (PEP 562): importing a single leaf such as
:mod:`repro.core.config` must not drag in the whole protocol stack, both
for import speed and because :mod:`repro.game` modules import paper
constants from ``repro.core.config`` — an eager ``__init__`` would
re-enter the partially-initialised ``repro.game`` package and crash.
"""

from importlib import import_module
from typing import Any

#: Public name -> defining submodule, resolved on first attribute access.
_EXPORTS = {
    "ActionRepetitionVerifier": "repro.core.action_repetition",
    "AdmissionDecision": "repro.core.admission",
    "estimate_proxy_kbps": "repro.core.admission",
    "estimate_publisher_kbps": "repro.core.admission",
    "feasibility_test": "repro.core.admission",
    "WatchmenConfig": "repro.core.config",
    "FRAME_SECONDS": "repro.core.config",
    "FRAMES_PER_SECOND": "repro.core.config",
    "FREQUENT_INTERVAL_FRAMES": "repro.core.config",
    "PROXY_PERIOD_FRAMES": "repro.core.config",
    "HANDOFF_DEPTH": "repro.core.config",
    "INTEREST_SET_SIZE": "repro.core.config",
    "VISION_HALF_ANGLE": "repro.core.config",
    "VISION_SLACK": "repro.core.config",
    "SIGNATURE_BITS": "repro.core.config",
    "STATE_UPDATE_BITS": "repro.core.config",
    "MAX_USEFUL_AGE_FRAMES": "repro.core.config",
    "ExposureCategory": "repro.core.disclosure",
    "ExposureHistogram": "repro.core.disclosure",
    "InfoLevel": "repro.core.disclosure",
    "coalition_category": "repro.core.disclosure",
    "watchmen_observer_level": "repro.core.disclosure",
    "SUB_INTEREST": "repro.core.messages",
    "SUB_VISION": "repro.core.messages",
    "GuidanceMessage": "repro.core.messages",
    "HandoffMessage": "repro.core.messages",
    "KillClaim": "repro.core.messages",
    "PositionUpdate": "repro.core.messages",
    "StateUpdate": "repro.core.messages",
    "SubscriptionRequest": "repro.core.messages",
    "message_size_bits": "repro.core.messages",
    "message_size_bytes": "repro.core.messages",
    "signable_bytes": "repro.core.messages",
    "MembershipView": "repro.core.membership",
    "RemovalProposal": "repro.core.membership",
    "HonestBehaviour": "repro.core.node",
    "NodeBehaviour": "repro.core.node",
    "WatchmenNode": "repro.core.node",
    "SessionReport": "repro.core.protocol",
    "WatchmenSession": "repro.core.protocol",
    "ProxyAssignment": "repro.core.proxy",
    "ProxySchedule": "repro.core.proxy",
    "BetaReputation": "repro.core.reputation",
    "InteractionTag": "repro.core.reputation",
    "ReputationBoard": "repro.core.reputation",
    "ThresholdReputation": "repro.core.reputation",
    "PlannedSubscriptions": "repro.core.subscriptions",
    "SubscriberTable": "repro.core.subscriptions",
    "SubscriptionPlanner": "repro.core.subscriptions",
    "CheatRating": "repro.core.verification",
    "CheckKind": "repro.core.verification",
    "Confidence": "repro.core.verification",
    "DeviationCalibration": "repro.core.verification",
    "GuidanceVerifier": "repro.core.verification",
    "KillVerifier": "repro.core.verification",
    "PositionVerifier": "repro.core.verification",
    "RateVerifier": "repro.core.verification",
    "SubscriptionVerifier": "repro.core.verification",
}

_SUBMODULES = frozenset(
    {
        "action_repetition",
        "admission",
        "config",
        "disclosure",
        "membership",
        "messages",
        "node",
        "protocol",
        "proxy",
        "reputation",
        "subscriptions",
        "verification",
        "wire",
    }
)

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> Any:
    target = _EXPORTS.get(name)
    if target is not None:
        value = getattr(import_module(target), name)
        globals()[name] = value  # cache: subsequent lookups skip __getattr__
        return value
    if name in _SUBMODULES:
        return import_module(f"repro.core.{name}")
    raise AttributeError(f"module 'repro.core' has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS) | _SUBMODULES)
