"""Watchmen core: the paper's contribution.

The one-stop import surface:

- :class:`~repro.core.config.WatchmenConfig` — all protocol tunables;
- :class:`~repro.core.protocol.WatchmenSession` — run a trace through the
  full protocol over a simulated WAN and collect metrics;
- :class:`~repro.core.proxy.ProxySchedule` — random/verifiable/dynamic
  proxy assignment;
- :mod:`~repro.core.verification` — sanity-check verifiers and ratings;
- :mod:`~repro.core.reputation` — reputation & banning backends;
- :mod:`~repro.core.disclosure` — information-exposure accounting.
"""

from repro.core.action_repetition import ActionRepetitionVerifier
from repro.core.admission import (
    AdmissionDecision,
    estimate_proxy_kbps,
    estimate_publisher_kbps,
    feasibility_test,
)
from repro.core.config import WatchmenConfig
from repro.core.disclosure import (
    ExposureCategory,
    ExposureHistogram,
    InfoLevel,
    coalition_category,
    watchmen_observer_level,
)
from repro.core.messages import (
    SUB_INTEREST,
    SUB_VISION,
    GuidanceMessage,
    HandoffMessage,
    KillClaim,
    PositionUpdate,
    StateUpdate,
    SubscriptionRequest,
    message_size_bits,
    message_size_bytes,
    signable_bytes,
)
from repro.core.membership import MembershipView, RemovalProposal
from repro.core.node import HonestBehaviour, NodeBehaviour, WatchmenNode
from repro.core.protocol import SessionReport, WatchmenSession
from repro.core.proxy import ProxyAssignment, ProxySchedule
from repro.core.reputation import (
    BetaReputation,
    InteractionTag,
    ReputationBoard,
    ThresholdReputation,
)
from repro.core.subscriptions import (
    PlannedSubscriptions,
    SubscriberTable,
    SubscriptionPlanner,
)
from repro.core.verification import (
    CheatRating,
    CheckKind,
    Confidence,
    DeviationCalibration,
    GuidanceVerifier,
    KillVerifier,
    PositionVerifier,
    RateVerifier,
    SubscriptionVerifier,
)

__all__ = [
    "ActionRepetitionVerifier",
    "AdmissionDecision",
    "BetaReputation",
    "CheatRating",
    "CheckKind",
    "Confidence",
    "DeviationCalibration",
    "ExposureCategory",
    "ExposureHistogram",
    "GuidanceMessage",
    "GuidanceVerifier",
    "HandoffMessage",
    "HonestBehaviour",
    "InfoLevel",
    "InteractionTag",
    "KillClaim",
    "KillVerifier",
    "MembershipView",
    "NodeBehaviour",
    "PlannedSubscriptions",
    "PositionUpdate",
    "PositionVerifier",
    "ProxyAssignment",
    "ProxySchedule",
    "RateVerifier",
    "RemovalProposal",
    "ReputationBoard",
    "SUB_INTEREST",
    "SUB_VISION",
    "SessionReport",
    "StateUpdate",
    "SubscriberTable",
    "SubscriptionPlanner",
    "SubscriptionRequest",
    "SubscriptionVerifier",
    "ThresholdReputation",
    "WatchmenConfig",
    "WatchmenNode",
    "WatchmenSession",
    "coalition_category",
    "estimate_proxy_kbps",
    "estimate_publisher_kbps",
    "feasibility_test",
    "message_size_bits",
    "message_size_bytes",
    "signable_bytes",
    "watchmen_observer_level",
]
