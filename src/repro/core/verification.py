"""Mutual verification: sanity checks, ratings and confidence (Section V-A).

Every player can verify every other player; accuracy depends on vantage
point.  Each check rates an observed action "from 1 to 10 with regards to
cheating probability (10 most likely cheating, 1 most likely normal)":
behaviour inside the expected envelope rates 1, and the rating grows with
the deviation.  Ratings are modulated by a **confidence factor** — proxies
highest, then IS witnesses, VS witnesses, and others
(c_P > c_IS > c_VS > c_O) — further discounted by update staleness.

The expected envelopes come from the same code the simulator runs
(physics, weapons, interest), plus calibration against honest behaviour:
e.g. a guidance message is acceptable while the area between predicted and
actual trajectory stays below ā + σ_a observed for honest players, which
keeps the false-positive rate at the paper's ≤5 % operating point.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace as dataclass_replace

from repro.core.config import FRAME_SECONDS
from repro.game.avatar import AvatarSnapshot
from repro.game.deadreckoning import (
    GuidancePrediction,
)
from repro.game.gamemap import GameMap, eye_position
from repro.game.interest import InterestConfig, attention_score, in_vision_cone
from repro.game.physics import Physics
from repro.game.vector import Vec3
from repro.game.weapons import WEAPONS

__all__ = [
    "Confidence",
    "CheckKind",
    "CheatRating",
    "DeviationCalibration",
    "PositionVerifier",
    "AimVerifier",
    "GuidanceVerifier",
    "KillVerifier",
    "ProjectileTracker",
    "SubscriptionVerifier",
    "RateVerifier",
    "rating_from_deviation",
]

MIN_RATING = 1.0
MAX_RATING = 10.0


class Confidence:
    """Confidence factors by vantage point: c_P > c_IS > c_VS > c_O."""

    PROXY = 1.0
    INTEREST = 0.75
    VISION = 0.55
    OTHER = 0.30

    STALENESS_HALFLIFE_FRAMES = 40

    @staticmethod
    def staleness_discount(staleness_frames: int) -> float:
        """Old evidence gets low confidence ("discrepancy of a new update
        with a very old guidance message is assigned a very low confidence")."""
        if staleness_frames <= 0:
            return 1.0
        return 0.5 ** (staleness_frames / Confidence.STALENESS_HALFLIFE_FRAMES)


class CheckKind:
    """The verification families of Section V-A / Figure 6."""

    POSITION = "position"
    GUIDANCE = "guidance"
    KILL = "kill"
    IS_SUBSCRIPTION = "is-sub"
    VS_SUBSCRIPTION = "vs-sub"
    RATE = "rate"
    AIM = "aim"

    ALL = (POSITION, GUIDANCE, KILL, IS_SUBSCRIPTION, VS_SUBSCRIPTION, RATE, AIM)


@dataclass(frozen=True, slots=True)
class CheatRating:
    """One verifier's verdict on one observed action."""

    verifier_id: int
    subject_id: int
    frame: int
    check: str
    rating: float  # 1 (normal) .. 10 (most likely cheating)
    confidence: float  # vantage-point confidence after staleness discount
    deviation: float  # the raw metric (u, u·s, rank, rate ratio, ...)
    detail: str = ""

    @property
    def score(self) -> float:
        """Confidence-weighted suspicion used for detection decisions."""
        return self.rating * self.confidence

    @property
    def suspicious(self) -> bool:
        return self.rating > MIN_RATING + 1e-9


def rating_from_deviation(deviation: float, allowed: float) -> float:
    """Map a deviation metric to the 1..10 rating scale.

    ≤ allowed → 1 (normal).  Beyond that the rating climbs linearly with
    the *relative* excess, saturating at 10 when the behaviour is ~3× the
    allowance.
    """
    if allowed <= 0:
        allowed = 1e-9
    if deviation <= allowed:
        return MIN_RATING
    excess = (deviation - allowed) / allowed
    return min(MAX_RATING, MIN_RATING + 9.0 * min(1.0, excess / 2.0))


@dataclass
class DeviationCalibration:
    """Streaming mean/σ of a deviation metric over honest behaviour.

    Welford's algorithm; ``allowance`` returns ā + k·σ_a, the acceptance
    envelope the paper uses for guidance verification.
    """

    count: int = 0
    mean: float = 0.0
    _m2: float = 0.0
    fallback: float = 1.0

    def observe(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)

    @property
    def std(self) -> float:
        if self.count < 2:
            return 0.0
        return math.sqrt(self._m2 / (self.count - 1))

    def allowance(self, sigmas: float = 1.0) -> float:
        if self.count < 8:  # not enough honest data yet; be permissive
            return self.fallback
        return self.mean + sigmas * self.std


# ---------------------------------------------------------------------------
# Individual verifiers
# ---------------------------------------------------------------------------


class PositionVerifier:
    """Checks successive position/state updates against game physics.

    "they can easily compare successive updates and control whether the
    movements follow game physics (e.g., gravity, limited velocity,
    angular speed, permitted position)".
    """

    def __init__(
        self,
        physics: Physics,
        tolerance: float = 1.10,
        max_gap_frames: int = 40,
    ) -> None:
        self.physics = physics
        self.tolerance = tolerance
        self.max_gap_frames = max_gap_frames
        self._last_seen: dict[int, AvatarSnapshot] = {}

    def observe(
        self,
        verifier_id: int,
        snapshot: AvatarSnapshot,
        confidence: float,
    ) -> CheatRating | None:
        """Feed one received update; returns a rating once history exists."""
        previous = self._last_seen.get(snapshot.player_id)
        self._last_seen[snapshot.player_id] = snapshot
        if previous is None or snapshot.frame <= previous.frame:
            return None
        frames = snapshot.frame - previous.frame
        # Respawns teleport avatars legitimately; skip the death transition.
        if not previous.alive or not snapshot.alive:
            return None
        # Very old history cannot distinguish a hidden death/respawn pair
        # from a teleport hack; abstain rather than guess (low-staleness
        # evidence would get near-zero confidence anyway).
        if frames > self.max_gap_frames:
            self._last_seen[snapshot.player_id] = snapshot
            return None
        excess = self.physics.displacement_excess(
            previous.position, snapshot.position, frames
        )
        # Slack absorbs frame-phase and quantization noise so honest
        # movement never rates above 1 (the FP ≤ 5 % operating point).
        allowed = max(
            2.0,
            self.physics.max_horizontal_travel(frames) * (self.tolerance - 1.0),
        )
        rating = rating_from_deviation(excess, allowed)
        return CheatRating(
            verifier_id=verifier_id,
            subject_id=snapshot.player_id,
            frame=snapshot.frame,
            check=CheckKind.POSITION,
            rating=rating,
            confidence=confidence,
            deviation=excess,
            detail=f"envelope excess {excess:.0f}u over {frames} frame(s)",
        )

    def forget(self, player_id: int) -> None:
        self._last_seen.pop(player_id, None)


class AimVerifier:
    """Angular-speed statistical check — the aimbot detector of Table I.

    Human (and honest-bot) view rotation is bounded by the engine's turn
    rate; an aimbot snapping instantly onto targets produces yaw jumps far
    beyond it.  Only short frame gaps are judged (yaw wraps make longer
    gaps ambiguous).
    """

    def __init__(
        self,
        max_turn_rate: float = 12.0,
        frame_seconds: float = FRAME_SECONDS,
        tolerance: float = 1.3,
        max_gap_frames: int = 5,
    ) -> None:
        self.max_turn_rate = max_turn_rate
        self.frame_seconds = frame_seconds
        self.tolerance = tolerance
        self.max_gap_frames = max_gap_frames
        self._last_seen: dict[int, AvatarSnapshot] = {}

    def observe(
        self,
        verifier_id: int,
        snapshot: AvatarSnapshot,
        confidence: float,
    ) -> CheatRating | None:
        previous = self._last_seen.get(snapshot.player_id)
        self._last_seen[snapshot.player_id] = snapshot
        if previous is None or snapshot.frame <= previous.frame:
            return None
        frames = snapshot.frame - previous.frame
        if frames > self.max_gap_frames:
            return None
        if not previous.alive or not snapshot.alive:
            return None
        delta = abs(
            (snapshot.yaw - previous.yaw + math.pi) % (2.0 * math.pi) - math.pi
        )
        allowed = self.max_turn_rate * self.frame_seconds * frames * self.tolerance
        rating = rating_from_deviation(delta, allowed)
        return CheatRating(
            verifier_id=verifier_id,
            subject_id=snapshot.player_id,
            frame=snapshot.frame,
            check=CheckKind.AIM,
            rating=rating,
            confidence=confidence,
            deviation=delta,
            detail=f"turned {delta:.2f} rad in {frames} frame(s)",
        )

    def forget(self, player_id: int) -> None:
        self._last_seen.pop(player_id, None)


class GuidanceVerifier:
    """Compares guidance predictions against subsequently observed motion.

    The deviation metric is the area between predicted and actual
    trajectories; the acceptance envelope ā + σ_a is calibrated online
    from honest observations.
    """

    def __init__(
        self,
        frame_seconds: float = FRAME_SECONDS,
        calibration: DeviationCalibration | None = None,
        sigmas: float = 2.0,
        check_horizon_frames: int = 8,
    ) -> None:
        self.frame_seconds = frame_seconds
        self.calibration = calibration or DeviationCalibration(fallback=60.0)
        self.sigmas = sigmas
        # Judge only the first frames after a prediction: honest constant-
        # velocity predictions are accurate there, while a fabricated
        # velocity diverges immediately — that is where the lie shows.
        self.check_horizon_frames = check_horizon_frames
        self._predictions: dict[int, GuidancePrediction] = {}
        self._observed: dict[int, list[tuple[int, Vec3]]] = {}

    def observe_guidance(
        self, subject_id: int, prediction: GuidancePrediction
    ) -> None:
        self._predictions[subject_id] = prediction
        self._observed[subject_id] = []

    def observe_position(
        self,
        verifier_id: int,
        snapshot: AvatarSnapshot,
        confidence: float,
        calibrate: bool = False,
    ) -> CheatRating | None:
        """Feed an observed position; rate once the horizon is covered."""
        prediction = self._predictions.get(snapshot.player_id)
        if prediction is None or snapshot.frame < prediction.frame:
            return None
        if not snapshot.alive:
            # Deaths/respawns teleport the avatar; the comparison is void.
            self._predictions.pop(snapshot.player_id, None)
            self._observed.pop(snapshot.player_id, None)
            return None
        track = self._observed.setdefault(snapshot.player_id, [])
        track.append((snapshot.frame, snapshot.position))
        horizon_end = prediction.frame + min(
            prediction.horizon_frames, self.check_horizon_frames
        )
        if snapshot.frame < horizon_end:
            return None

        frames = [f for f, _ in track]
        start = min(frames)
        staleness = max(0, start - prediction.frame)
        # A meaningful endpoint comparison needs observations tightly
        # bracketing the check endpoint; sparse (1 Hz) trackers abstain —
        # "the accuracy is obviously reduced" for players outside IS/VS.
        before = [f for f in frames if f <= horizon_end]
        after = [f for f in frames if f >= horizon_end]
        if not before or not after or min(after) - max(before) > 4:
            del self._predictions[snapshot.player_id]
            del self._observed[snapshot.player_id]
            return None
        # Deviation: where the prediction says the avatar should be at the
        # end of the check window versus where it actually is.
        actual_end = self._interpolate(track, horizon_end)
        predicted_end = prediction.position_at(horizon_end, self.frame_seconds)
        gap = predicted_end.distance_to(actual_end)

        del self._predictions[snapshot.player_id]
        del self._observed[snapshot.player_id]

        if calibrate:
            self.calibration.observe(gap)
        allowed = max(self.calibration.allowance(self.sigmas), 16.0)
        rating = rating_from_deviation(gap, allowed)
        return CheatRating(
            verifier_id=verifier_id,
            subject_id=snapshot.player_id,
            frame=snapshot.frame,
            check=CheckKind.GUIDANCE,
            rating=rating,
            confidence=confidence * Confidence.staleness_discount(staleness),
            deviation=gap,
            detail=f"prediction off by {gap:.0f}u vs allowance {allowed:.0f}u",
        )

    @staticmethod
    def _interpolate(track: list[tuple[int, Vec3]], frame: int) -> Vec3:
        track = sorted(track, key=lambda point: point[0])
        before = [(f, p) for f, p in track if f <= frame]
        after = [(f, p) for f, p in track if f >= frame]
        if before and after:
            f0, p0 = before[-1]
            f1, p1 = after[0]
            if f0 == f1:
                return p0
            t = (frame - f0) / (f1 - f0)
            return p0.lerp(p1, t)
        return (before or after)[0][1]


class ProjectileTracker:
    """Remembers announced short-lived objects per owner.

    Verifiers use it two ways: validate the announcement itself (origin at
    the shooter, speed matching the weapon) and later corroborate kill
    claims ("a rocket was effectively fired").
    """

    def __init__(self, max_age_frames: int = 80) -> None:
        self.max_age_frames = max_age_frames
        self._spawns: dict[int, list] = {}  # owner -> [(frame, weapon, origin, velocity)]

    def record(
        self, owner_id: int, frame: int, weapon: str, origin: Vec3, velocity: Vec3
    ) -> None:
        spawns = self._spawns.setdefault(owner_id, [])
        spawns.append((frame, weapon, origin, velocity))
        cutoff = frame - self.max_age_frames
        self._spawns[owner_id] = [s for s in spawns if s[0] >= cutoff]

    def verify_spawn(
        self,
        verifier_id: int,
        spawn_frame: int,
        owner_id: int,
        weapon: str,
        origin: Vec3,
        velocity: Vec3,
        owner_snapshot: AvatarSnapshot | None,
        confidence: float,
    ) -> CheatRating:
        """Sanity-check an announcement before recording it."""
        spec = WEAPONS.get(weapon)
        deviation = 0.0
        details = []
        if spec is None or spec.projectile_speed is None:
            return CheatRating(
                verifier_id=verifier_id,
                subject_id=owner_id,
                frame=spawn_frame,
                check=CheckKind.KILL,
                rating=MAX_RATING,
                confidence=confidence,
                deviation=math.inf,
                detail=f"projectile announcement for non-projectile {weapon!r}",
            )
        speed = velocity.length()
        speed_error = abs(speed - spec.projectile_speed)
        if speed_error > spec.projectile_speed * 0.1:
            deviation = max(deviation, speed_error)
            details.append(f"speed {speed:.0f} vs spec {spec.projectile_speed:.0f}")
        if owner_snapshot is not None:
            staleness = max(0, spawn_frame - owner_snapshot.frame)
            slack = 320.0 * 0.05 * (staleness + 2)
            origin_gap = origin.distance_to(owner_snapshot.position)
            if origin_gap > 64.0 + slack:
                deviation = max(deviation, origin_gap)
                details.append(f"origin {origin_gap:.0f}u from the shooter")
        rating = (
            MIN_RATING
            if not details
            else rating_from_deviation(deviation, 64.0)
        )
        return CheatRating(
            verifier_id=verifier_id,
            subject_id=owner_id,
            frame=spawn_frame,
            check=CheckKind.KILL,
            rating=rating,
            confidence=confidence,
            deviation=deviation,
            detail="; ".join(details) or "consistent projectile spawn",
        )

    def closest_approach(
        self,
        owner_id: int,
        weapon: str,
        claim_frame: int,
        target_position: Vec3,
        frame_seconds: float = FRAME_SECONDS,
    ) -> tuple[float, int] | None:
        """(min distance, flight frames) of the best matching spawn.

        None when the owner announced no matching projectile recently —
        the rocket was never fired.  The flight age matters to the caller:
        the victim keeps moving while the rocket flies, so the acceptance
        radius grows with it.
        """
        spawns = [
            s
            for s in self._spawns.get(owner_id, [])
            if s[1] == weapon and 0 <= claim_frame - s[0] <= self.max_age_frames
        ]
        if not spawns:
            return None
        best = math.inf
        best_age = 0
        for spawn_frame, weapon_name, origin, velocity in spawns:
            # Sample the whole plausible flight: claims may be issued the
            # instant of impact, so the elapsed frames alone do not bound
            # how far the projectile travelled.
            spec = WEAPONS.get(weapon_name)
            speed = max(1.0, velocity.length())
            max_range = (
                spec.effective_range if spec is not None else speed
            )
            steps = max(1, int(max_range / (speed * frame_seconds)))
            for step in range(steps + 1):
                point = origin + velocity * (step * frame_seconds)
                gap = point.distance_to(target_position)
                if gap < best:
                    best = gap
                    best_age = claim_frame - spawn_frame
        return best, best_age


class KillVerifier:
    """Verifies kill claims: weapon, distance, visibility, rate, IS dwell.

    "The verification consists of checking that, e.g., a rocket was
    effectively fired and the distance between the position of the rocket
    and that of the target is used as a metric of the deviation."
    """

    def __init__(
        self,
        game_map: GameMap,
        range_tolerance: float = 1.15,
        projectiles: "ProjectileTracker | None" = None,
    ) -> None:
        self.game_map = game_map
        self.range_tolerance = range_tolerance
        self.projectiles = projectiles
        self._last_kill_frame: dict[int, int] = {}

    def verify(
        self,
        verifier_id: int,
        claim_frame: int,
        killer_id: int,
        weapon: str,
        killer_snapshot: AvatarSnapshot | None,
        victim_snapshot: AvatarSnapshot | None,
        confidence: float,
        has_full_object_view: bool = True,
    ) -> CheatRating:
        spec = WEAPONS.get(weapon)
        suspicion: list[str] = []
        deviation = 0.0

        if spec is None:
            return CheatRating(
                verifier_id=verifier_id,
                subject_id=killer_id,
                frame=claim_frame,
                check=CheckKind.KILL,
                rating=MAX_RATING,
                confidence=confidence,
                deviation=math.inf,
                detail=f"unknown weapon {weapon!r}",
            )

        staleness = 0
        if killer_snapshot is not None and victim_snapshot is not None:
            staleness = max(
                0,
                claim_frame - killer_snapshot.frame,
                claim_frame - victim_snapshot.frame,
            )
            # Both parties may have moved since our snapshots; widen the
            # distance allowance accordingly (both could close the gap).
            motion_slack = 2.0 * 320.0 * 0.05 * staleness
            distance = killer_snapshot.position.distance_to(victim_snapshot.position)
            max_range = spec.effective_range * self.range_tolerance + motion_slack
            if distance > max_range:
                suspicion.append(f"distance {distance:.0f}u > range {max_range:.0f}u")
                deviation = max(deviation, distance - max_range)
            # Visibility flips with small movements; only judge it on
            # fresh views ("a very old guidance message is assigned a very
            # low confidence" — we abstain instead of guessing).
            if staleness <= 8 and not self.game_map.line_of_sight(
                eye_position(killer_snapshot.position),
                eye_position(victim_snapshot.position),
            ):
                suspicion.append("no line of sight")
                deviation = max(deviation, spec.effective_range)
            if killer_snapshot.weapon and killer_snapshot.weapon != weapon:
                suspicion.append(
                    f"claimed {weapon} but carries {killer_snapshot.weapon}"
                )
                deviation = max(deviation, spec.effective_range / 2.0)

        # Refire-rate sanity: kills cannot arrive faster than the weapon cycles.
        last = self._last_kill_frame.get(killer_id)
        self._last_kill_frame[killer_id] = claim_frame
        if last is not None and 0 <= claim_frame - last < spec.refire_frames:
            suspicion.append("kill faster than weapon refire")
            deviation = max(deviation, spec.effective_range)

        # Projectile corroboration: a rocket kill needs an announced rocket
        # whose path actually reaches the victim.  Only the proxy sees
        # every announcement; witnesses may miss spawns (subscriber churn),
        # so absence of evidence is evidence only with the full view.
        if (
            self.projectiles is not None
            and spec.projectile_speed is not None
            and victim_snapshot is not None
            and has_full_object_view
        ):
            match = self.projectiles.closest_approach(
                killer_id, weapon, claim_frame, victim_snapshot.position
            )
            if match is None:
                suspicion.append("no matching projectile was ever fired")
                deviation = max(deviation, spec.effective_range)
            else:
                approach, flight_frames = match
                # The victim runs while the rocket flies; the acceptance
                # radius grows with the flight (and view staleness).
                allowed = 160.0 + 320.0 * 0.05 * (flight_frames + staleness)
                if approach > allowed:
                    suspicion.append(
                        f"closest announced projectile passed "
                        f"{approach:.0f}u away (allowed {allowed:.0f}u)"
                    )
                    deviation = max(deviation, approach)

        if not suspicion:
            rating = MIN_RATING
        else:
            rating = rating_from_deviation(
                deviation, spec.effective_range * 0.05
            )
        return CheatRating(
            verifier_id=verifier_id,
            subject_id=killer_id,
            frame=claim_frame,
            check=CheckKind.KILL,
            rating=rating,
            confidence=confidence * Confidence.staleness_discount(staleness),
            deviation=deviation,
            detail="; ".join(suspicion) or "consistent kill",
        )


class SubscriptionVerifier:
    """Proxy-side check that a client's subscriptions are justified.

    "A VS subscription is only valid if q is in p's vision cone.  For
    incorrect VS subscriptions, the distance between q and p's vision cone
    is used as a metric ... For IS-subscriptions, a proxy computes interest
    with sufficient accuracy based on the attention metric."
    """

    def __init__(
        self,
        game_map: GameMap,
        interest: InterestConfig,
        repeat_window_frames: int = 200,
        repeat_step: float = 1.5,
    ) -> None:
        self.game_map = game_map
        self.interest = interest
        # Honest "ghost" subscriptions (planned on stale target info) are
        # sporadic and self-correcting; a maphack consumer re-subscribes to
        # invisible targets *persistently*.  Repetition escalates the
        # rating — "repetitions" are their own cheat signature (Table I).
        self.repeat_window_frames = repeat_window_frames
        self.repeat_step = repeat_step
        self._suspicious_frames: dict[int, list[int]] = {}

    def verify_vision_subscription(
        self,
        verifier_id: int,
        frame: int,
        subscriber: AvatarSnapshot,
        target: AvatarSnapshot,
        confidence: float,
        slack_frames: int = 8,
    ) -> CheatRating:
        """Rate a VS subscription; slack_frames forgives subscription latency."""
        if in_vision_cone(subscriber, target, self.interest):
            rating, deviation, detail = MIN_RATING, 0.0, "target inside cone"
            # Maphack signature: inside the cone but behind a wall — "the
            # avatars that are in a player's vision range, but behind a
            # wall do not appear in his vision set".  Occlusion flips with
            # small movements, so only fresh views are judged.
            staleness = max(
                0, frame - subscriber.frame, frame - target.frame
            )
            if staleness <= 4 and self._solidly_occluded(subscriber, target):
                deviation = 0.3 * subscriber.position.distance_to(
                    target.position
                )
                allowed = 320.0 * 0.05 * slack_frames
                rating = rating_from_deviation(deviation, allowed)
                rating = self._escalate(subscriber.player_id, frame, rating)
                detail = "target inside cone but occluded"
        else:
            # The subscriber may have planned on a position-update-old view
            # of the target (up to ~1 s).  Rewind the target along its
            # velocity and take the most charitable reading: an honest
            # subscription matches some recent target position, a bogus one
            # (never-visible target) matches none.
            deviation = self._cone_deviation(subscriber, target)
            for rewind_frames in (10, 20):
                rewound = dataclass_replace(
                    target,
                    position=target.position
                    - target.velocity * (0.05 * rewind_frames),
                )
                if in_vision_cone(
                    subscriber, rewound, self.interest
                ) and self.game_map.line_of_sight(
                    eye_position(subscriber.position),
                    eye_position(rewound.position),
                ):
                    deviation = 0.0
                    break
                deviation = min(
                    deviation, self._cone_deviation(subscriber, rewound)
                )
            # Allow the target to be a few frames of movement outside the
            # cone: subscriptions are predicted/retained, not instantaneous.
            allowed = 320.0 * 0.05 * slack_frames + 0.15 * self.interest.vision_radius
            rating = rating_from_deviation(deviation, allowed)
            rating = self._escalate(subscriber.player_id, frame, rating)
            detail = f"target {deviation:.0f}u outside cone"
        return CheatRating(
            verifier_id=verifier_id,
            subject_id=subscriber.player_id,
            frame=frame,
            check=CheckKind.VS_SUBSCRIPTION,
            rating=rating,
            confidence=confidence,
            deviation=deviation,
            detail=detail,
        )

    def verify_interest_subscription(
        self,
        verifier_id: int,
        frame: int,
        subscriber: AvatarSnapshot,
        target: AvatarSnapshot,
        known: dict[int, AvatarSnapshot],
        confidence: float,
    ) -> CheatRating:
        """Rate an IS subscription by the target's attention rank."""
        vision_rating = self.verify_vision_subscription(
            verifier_id, frame, subscriber, target, confidence
        )
        if vision_rating.rating > MIN_RATING:
            # Not even visible: inherit the cone deviation but tag as IS.
            # (Escalation already applied inside the vision check.)
            return CheatRating(
                verifier_id=verifier_id,
                subject_id=subscriber.player_id,
                frame=frame,
                check=CheckKind.IS_SUBSCRIPTION,
                rating=vision_rating.rating,
                confidence=confidence,
                deviation=vision_rating.deviation,
                detail="IS target outside vision cone",
            )
        target_score = attention_score(subscriber, target, frame, self.interest)
        rank = 1
        for other_id, other in known.items():
            if other_id in (subscriber.player_id, target.player_id):
                continue
            if not other.alive or not in_vision_cone(subscriber, other, self.interest):
                continue
            if (
                attention_score(subscriber, other, frame, self.interest)
                > target_score
            ):
                rank += 1
        allowed_rank = self.interest.interest_size * 2  # generous: local views differ
        rating = rating_from_deviation(float(rank), float(allowed_rank))
        rating = self._escalate(subscriber.player_id, frame, rating)
        return CheatRating(
            verifier_id=verifier_id,
            subject_id=subscriber.player_id,
            frame=frame,
            check=CheckKind.IS_SUBSCRIPTION,
            rating=rating,
            confidence=confidence,
            deviation=float(rank),
            detail=f"target attention rank {rank} (IS size {self.interest.interest_size})",
        )

    def _escalate(self, subscriber_id: int, frame: int, rating: float) -> float:
        """Raise the rating with each recent suspicious subscription."""
        if rating <= 2.0:
            return rating
        history = self._suspicious_frames.setdefault(subscriber_id, [])
        cutoff = frame - self.repeat_window_frames
        history[:] = [f for f in history if f >= cutoff]
        repeats = len(history)
        history.append(frame)
        # The first couple of suspicious subscriptions are within honest
        # ghosting rates; escalation starts from the third in the window.
        return min(MAX_RATING, rating + self.repeat_step * max(0, repeats - 1))

    def _solidly_occluded(
        self, subscriber: AvatarSnapshot, target: AvatarSnapshot
    ) -> bool:
        """Blocked along the direct line *and* laterally offset lines.

        Verifier views lag the subscriber's by a frame or two; near wall
        edges that flips single-ray visibility and would convict honest
        subscriptions.  A maphack target sits deep behind geometry, where
        every sampled ray is blocked.
        """
        eye_a = eye_position(subscriber.position)
        eye_b = eye_position(target.position)
        direction = (eye_b - eye_a).with_z(0.0).normalized()
        perp = Vec3(-direction.y, direction.x, 0.0) * 40.0
        samples = (
            (eye_a, eye_b),
            (eye_a + perp, eye_b + perp),
            (eye_a - perp, eye_b - perp),
        )
        return all(
            not self.game_map.line_of_sight(a, b) for a, b in samples
        )

    def _cone_deviation(
        self, subscriber: AvatarSnapshot, target: AvatarSnapshot
    ) -> float:
        """Distance-like metric from the target to the subscriber's cone."""
        offset = target.position - subscriber.position
        distance = offset.length()
        radial_excess = max(0.0, distance - self.interest.vision_radius)
        aim = Vec3.from_yaw(subscriber.yaw)
        angle_excess = max(
            0.0, aim.angle_to(offset) - self.interest.effective_half_angle
        )
        # Arc-length conversion puts the angular excess in world units.
        return radial_excess + angle_excess * min(
            distance, self.interest.vision_radius
        )


class RateVerifier:
    """Proxy-side dissemination-rate monitoring.

    Catches fast-rate cheats (more updates per window than the game can
    generate), suppress-correct / escaping (long silences followed by a
    burst), and look-ahead/time cheats (updates stamped with frames that
    lag or lead the wall-clock frame beyond plausible network delay).
    """

    def __init__(
        self,
        expected_interval_frames: int = 1,
        window_frames: int = 40,
        silence_allowance_frames: int = 8,
        skew_allowance_frames: int = 6,
    ) -> None:
        self.expected_interval = expected_interval_frames
        self.window = window_frames
        self.silence_allowance = silence_allowance_frames
        self.skew_allowance = skew_allowance_frames
        self._arrivals: dict[int, list[int]] = {}  # subject -> stamped frames
        self._arrival_wallclock: dict[int, list[int]] = {}
        self._first_arrival: dict[int, int] = {}

    def observe(
        self,
        verifier_id: int,
        subject_id: int,
        stamped_frame: int,
        wallclock_frame: int,
        confidence: float,
    ) -> list[CheatRating]:
        """Feed one arrival; returns zero or more rate-family ratings."""
        stamps = self._arrivals.setdefault(subject_id, [])
        walls = self._arrival_wallclock.setdefault(subject_id, [])
        # A long interruption means the stream (tenure) restarted: deficit
        # accounting must restart with it, or a re-elected proxy flags the
        # warm-up of a perfectly healthy stream.  The interruption itself
        # is the silence check's job.
        if not walls or wallclock_frame - walls[-1] > self.silence_allowance * 2:
            self._first_arrival[subject_id] = wallclock_frame
        else:
            self._first_arrival.setdefault(subject_id, wallclock_frame)
        stamps.append(stamped_frame)
        walls.append(wallclock_frame)
        cutoff = wallclock_frame - self.window
        while walls and walls[0] < cutoff:
            walls.pop(0)
            stamps.pop(0)

        ratings: list[CheatRating] = []

        # Deficit: too FEW updates over a half-window — a blind-opponent
        # cheat thins the stream without ever leaving a long single gap.
        deficit_window = max(2, self.window // 2)
        first = self._first_arrival[subject_id]
        if wallclock_frame - first >= deficit_window:
            recent = sum(
                1 for w in walls if w > wallclock_frame - deficit_window
            )
            expected = deficit_window // self.expected_interval
            allowed_deficit = max(2.0, expected * 0.2)  # loss/jitter slack
            deficit = float(expected - recent)
            if deficit > allowed_deficit:
                ratings.append(
                    CheatRating(
                        verifier_id=verifier_id,
                        subject_id=subject_id,
                        frame=wallclock_frame,
                        check=CheckKind.RATE,
                        rating=rating_from_deviation(deficit, allowed_deficit),
                        confidence=confidence,
                        deviation=deficit,
                        detail=(
                            f"only {recent} of ~{expected} expected updates in "
                            f"{deficit_window} frames"
                        ),
                    )
                )

        # Fast-rate: more arrivals in the window than frames allow.
        expected_max = self.window // self.expected_interval + 2
        if len(walls) > expected_max:
            rating = rating_from_deviation(float(len(walls)), float(expected_max))
            ratings.append(
                CheatRating(
                    verifier_id=verifier_id,
                    subject_id=subject_id,
                    frame=wallclock_frame,
                    check=CheckKind.RATE,
                    rating=rating,
                    confidence=confidence,
                    deviation=float(len(walls)),
                    detail=f"{len(walls)} updates in {self.window} frames",
                )
            )

        # Time skew: stamped frame far from arrival frame (look-ahead delays
        # or future-stamped updates).
        skew = abs(wallclock_frame - stamped_frame)
        if skew > self.skew_allowance:
            ratings.append(
                CheatRating(
                    verifier_id=verifier_id,
                    subject_id=subject_id,
                    frame=wallclock_frame,
                    check=CheckKind.RATE,
                    rating=rating_from_deviation(
                        float(skew), float(self.skew_allowance)
                    ),
                    confidence=confidence,
                    deviation=float(skew),
                    detail=f"update stamped {stamped_frame} arrived at {wallclock_frame}",
                )
            )

        # Silence: a gap between consecutive stamps beyond the allowance —
        # suppress-correct, blind-opponent or escaping behaviour.
        if len(stamps) >= 2:
            gap = stamps[-1] - stamps[-2]
            if gap > self.silence_allowance:
                ratings.append(
                    CheatRating(
                        verifier_id=verifier_id,
                        subject_id=subject_id,
                        frame=wallclock_frame,
                        check=CheckKind.RATE,
                        rating=rating_from_deviation(
                            float(gap), float(self.silence_allowance)
                        ),
                        confidence=confidence,
                        deviation=float(gap),
                        detail=f"silent for {gap} frames then resumed",
                    )
                )
        return ratings

    def last_arrival_wallclock(self, subject_id: int) -> int | None:
        """Wallclock frame of the subject's most recent arrival, if any."""
        walls = self._arrival_wallclock.get(subject_id)
        return walls[-1] if walls else None

    def check_silence(
        self,
        verifier_id: int,
        subject_id: int,
        wallclock_frame: int,
        confidence: float,
        not_before_frame: int = 0,
    ) -> CheatRating | None:
        """Poll for ongoing silence (escaping detection without a new arrival).

        ``not_before_frame`` lets a freshly (re-)elected proxy ignore stamps
        that predate its tenure.
        """
        stamps = self._arrivals.get(subject_id)
        if not stamps:
            return None
        walls = self._arrival_wallclock.get(subject_id)
        if walls and walls[-1] < not_before_frame:
            return None
        gap = wallclock_frame - stamps[-1]
        if gap <= self.silence_allowance * 2:
            return None
        return CheatRating(
            verifier_id=verifier_id,
            subject_id=subject_id,
            frame=wallclock_frame,
            check=CheckKind.RATE,
            rating=rating_from_deviation(
                float(gap), float(self.silence_allowance)
            ),
            confidence=confidence,
            deviation=float(gap),
            detail=f"no update for {gap} frames (escaping?)",
        )

    def forget(self, subject_id: int) -> None:
        self._arrivals.pop(subject_id, None)
        self._arrival_wallclock.pop(subject_id, None)
        self._first_arrival.pop(subject_id, None)
