"""``repro mc`` / ``python -m repro.mc`` — the model checker's front end.

Runs the bounded interleaving exploration over the scenario matrix (or a
named subset), seeding partial-order reduction from the M-family
footprint table — recomputed in-process by default, or loaded from a
``repro lint --footprints`` export with ``--footprints``.

Exit codes mirror ``repro lint``: 0 every explored scenario holds its
invariants, 1 a violation was found (the minimized counterexample tape
lands in ``--counterexample-dir``) or ``--require-complete`` was set and
a scenario exhausted its execution budget before covering the space,
2 usage errors (unknown scenario, unreadable footprint file).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Any, Mapping

from repro.mc.explorer import (
    ExploreReport,
    explore_scenario,
    load_footprints,
    render_report,
    summary_json,
)
from repro.mc.scenarios import SCENARIOS, scenario_by_name

__all__ = ["add_mc_arguments", "build_parser", "cmd_mc", "main"]


def add_mc_arguments(parser: argparse.ArgumentParser) -> None:
    """Shared between the standalone parser and the ``repro`` subcommand."""
    parser.add_argument(
        "scenarios",
        nargs="*",
        help="scenario names to explore (default: the full matrix)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        dest="list_scenarios",
        help="list the scenario matrix with descriptions and exit",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repository root (footprint extraction scans src/repro under it)",
    )
    parser.add_argument(
        "--footprints",
        metavar="PATH",
        help="load the footprint table from a `repro lint --footprints` "
        "export instead of recomputing it",
    )
    parser.add_argument(
        "--max-executions",
        type=int,
        default=None,
        metavar="N",
        help="override every scenario's execution budget",
    )
    parser.add_argument(
        "--counterexample-dir",
        default="artifacts/mc",
        metavar="DIR",
        help="where minimized counterexample tapes are written "
        "(default: artifacts/mc; created only on violation)",
    )
    parser.add_argument(
        "--require-complete",
        action="store_true",
        help="exit 1 if any scenario exhausts its execution budget before "
        "exploring the whole schedule space (CI's coverage gate)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="write exploration counts as a repro.bench.v1 artifact "
        "('-' for stdout)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro mc",
        description="bounded interleaving model checker with tape "
        "counterexamples",
    )
    add_mc_arguments(parser)
    return parser


def _list_scenarios() -> int:
    for scenario in SCENARIOS:
        controlled = ", ".join(scenario.controlled)
        print(f"{scenario.name:<22} {scenario.description}")
        print(
            f"{'':<22} controls [{controlled}] in frames "
            f"[{scenario.window[0]}, {scenario.window[1]}); "
            f"invariants: {', '.join(scenario.invariants)}"
        )
    return 0


def _write_json_artifact(
    reports: list[ExploreReport], path: str, wall_seconds: float
) -> None:
    from repro.obs.emit import bench_row, write_bench_json

    # One gated row: states/executions are deterministic for a fixed tree
    # (bench-diff catches a POR regression silently re-inflating the
    # space), wall_seconds is the machine-dependent cost signal.
    metrics: dict[str, float] = {
        "mc_states_explored": float(sum(r.states_explored for r in reports)),
        "executions": float(sum(r.executions for r in reports)),
        "pruned": float(sum(r.pruned for r in reports)),
        "violations": float(sum(0 if r.ok else 1 for r in reports)),
        "wall_seconds": wall_seconds,
    }
    rows = [bench_row(bench="mc", params={}, metrics=metrics)]
    if path == "-":
        print(
            json.dumps(
                {"schema": "repro.bench.v1", "rows": rows},
                indent=2,
                sort_keys=True,
            )
        )
    else:
        write_bench_json(path, rows)


def cmd_mc(args: argparse.Namespace) -> int:
    if args.list_scenarios:
        return _list_scenarios()

    try:
        selected = (
            [scenario_by_name(name) for name in args.scenarios]
            if args.scenarios
            else list(SCENARIOS)
        )
    except ValueError as error:
        print(f"repro mc: {error}", file=sys.stderr)
        return 2

    footprints: Mapping[str, Any]
    if args.footprints:
        try:
            footprints = json.loads(
                Path(args.footprints).read_text(encoding="utf-8")
            )
        except (OSError, ValueError) as error:
            print(
                f"repro mc: cannot load footprints from "
                f"{args.footprints}: {error}",
                file=sys.stderr,
            )
            return 2
    else:
        footprints = load_footprints(Path(args.root))

    started = time.perf_counter()
    reports: list[ExploreReport] = []
    for scenario in selected:
        report = explore_scenario(
            scenario,
            footprints=footprints,
            max_executions=args.max_executions,
            counterexample_dir=Path(args.counterexample_dir),
        )
        reports.append(report)
        print(render_report(report))
    wall_seconds = time.perf_counter() - started

    if args.json:
        _write_json_artifact(reports, args.json, wall_seconds)

    summary = summary_json(reports)
    if not summary["ok"]:
        return 1
    if args.require_complete and not summary["complete"]:
        incomplete = ", ".join(r.scenario for r in reports if not r.complete)
        print(
            f"repro mc: exploration incomplete within budget: {incomplete}",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return cmd_mc(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
