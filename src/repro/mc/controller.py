"""Delivery-schedule controller: message ordering as a decision point.

The model checker needs to *choose* the order in which a small set of
protocol messages is delivered, while everything else about the run —
game trace, RNG lanes, periodic updates — stays bit-identical.  The
:class:`McController` does this by hooking
:class:`repro.net.transport.DatagramNetwork`: sends of *controlled*
message types inside the decision *window* are captured instead of being
scheduled through the latency model, and are released at the start of
subsequent frames under an explicit decision loop.

Each flush iteration is one **decision point**: the controller computes
the set of enabled actions over the messages that are ready, then either
follows the next entry of its *schedule* (the explorer's chosen prefix,
or a counterexample tape's recorded choices) or applies the default
policy — deliver the first message in canonical order.  Beyond plain
delivery reordering, bounded fault decisions widen the space:

* ``("drop", id)`` — discard the message (at most ``drop_budget`` times),
* ``("dup", id)`` — deliver it *and* re-enqueue a copy for another
  decision (at most ``dup_budget`` times),
* ``("defer", id)`` — push it to the next frame (at most ``defer_limit``
  times per message, so the loop always terminates, and at most
  ``defer_budget`` times per execution when a budget is set — per-message
  limits alone let the schedule space grow as 2^messages).

Determinism contract: for a fixed session and a fixed schedule prefix,
the sequence of decision points — enabled sets and all — is identical on
every run.  The explorer relies on this to branch (it replays a prefix
and substitutes one choice), and counterexample tapes rely on it to
reproduce a violation from the recorded schedule alone.  When a
scheduled action is not enabled (possible only if the tree changed since
the tape was recorded), the controller falls back to the default policy
and counts the mismatch instead of crashing — the tape verifier then
reports the divergence through fingerprints, which is the signal CI
wants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.core.protocol import WatchmenSession
from repro.net.transport import DatagramNetwork, ScheduleController

__all__ = ["Action", "McDecision", "McController"]

#: one choice: ``(action, capture_id)`` with action in
#: {"deliver", "drop", "dup", "defer"}
Action = tuple[str, int]


@dataclass(slots=True)
class _Captured:
    """One intercepted send awaiting a delivery decision."""

    capture_id: int
    src: int
    dst: int
    payload: object
    size_bytes: int
    sent_at: float
    type_name: str
    ready_at: int
    defers: int = 0

    def canonical_key(self) -> tuple[int, int, int, str, int]:
        """Deterministic ordering independent of capture timing jitter."""
        return (self.ready_at, self.src, self.dst, self.type_name, self.capture_id)


@dataclass(frozen=True, slots=True)
class McDecision:
    """One decision point: what was possible and what was chosen."""

    frame: int
    enabled: tuple[Action, ...]
    chosen: Action

    def to_json(self) -> dict[str, Any]:
        return {
            "frame": self.frame,
            "enabled": [list(a) for a in self.enabled],
            "chosen": list(self.chosen),
        }


class McController(ScheduleController):
    """Capture controlled sends and release them under an explicit schedule."""

    def __init__(
        self,
        controlled: Sequence[str],
        window: tuple[int, int],
        drop_budget: int = 0,
        dup_budget: int = 0,
        defer_limit: int = 0,
        defer_budget: int | None = None,
        controlled_src: Sequence[int] | None = None,
        schedule: Sequence[Action] = (),
    ) -> None:
        if window[0] >= window[1]:
            raise ValueError("decision window must be non-empty")
        self.controlled = frozenset(controlled)
        #: restrict decision points to sends from these nodes (None = all);
        #: scenarios use this to keep messages that cannot influence the
        #: checked invariant out of the schedule space
        self.controlled_src = (
            None if controlled_src is None else frozenset(int(s) for s in controlled_src)
        )
        self.window = (int(window[0]), int(window[1]))
        self.drop_budget = int(drop_budget)
        self.dup_budget = int(dup_budget)
        self.defer_limit = int(defer_limit)
        self.defer_budget = None if defer_budget is None else int(defer_budget)
        self.schedule: tuple[Action, ...] = tuple(
            (str(action), int(cid)) for action, cid in schedule
        )
        self.decisions: list[McDecision] = []
        #: scheduled actions that were not enabled when their turn came;
        #: nonzero means the tree diverged from the schedule's origin
        self.fallbacks = 0
        self.captured = 0
        self.delivered = 0
        self.dropped = 0
        self.duplicated = 0
        self.deferred = 0
        #: capture_id → (src, dst, type_name); the explorer's independence
        #: relation needs destination and message type per decision id
        self.meta: dict[int, tuple[int, int, str]] = {}
        self._network: DatagramNetwork | None = None
        self._pending: list[_Captured] = []
        self._frame = -1
        self._next_id = 0
        self._script_pos = 0
        self._drops_used = 0
        self._dups_used = 0
        self._defers_used = 0

    # ---- wiring ----------------------------------------------------------

    def install(self, session: WatchmenSession) -> None:
        """Attach to the session's network and frame-begin hook.

        Must run before any recorder/verifier hooks attach so both the
        record and verify paths end up with the identical chain:
        recorder bookkeeping first, then the controller's flush.
        """
        self._network = session.network
        session.network.attach_controller(self)
        previous = session.on_frame_begin

        def hook(frame: int) -> None:
            if previous is not None:
                previous(frame)
            self.begin_frame(frame)

        session.on_frame_begin = hook

    # ---- ScheduleController ----------------------------------------------

    def intercept(self, src: int, dst: int, payload: object, size_bytes: int) -> bool:
        network = self._network
        if network is None:
            return False
        if not self.window[0] <= self._frame < self.window[1]:
            return False
        if src == dst:
            return False  # local loopback is synchronous; never reordered
        if self.controlled_src is not None and src not in self.controlled_src:
            return False
        type_name = type(payload).__name__
        if type_name not in self.controlled:
            return False
        self._pending.append(
            _Captured(
                capture_id=self._next_id,
                src=src,
                dst=dst,
                payload=payload,
                size_bytes=size_bytes,
                sent_at=network.queue.now,
                type_name=type_name,
                ready_at=self._frame + 1,
            )
        )
        self.meta[self._next_id] = (src, dst, type_name)
        self._next_id += 1
        self.captured += 1
        return True

    # ---- decision loop ---------------------------------------------------

    def begin_frame(self, frame: int) -> None:
        self._frame = frame
        while True:
            ready = sorted(
                (e for e in self._pending if e.ready_at <= frame),
                key=_Captured.canonical_key,
            )
            if not ready:
                return
            enabled = self._enabled_actions(ready)
            chosen = self._choose(enabled)
            self.decisions.append(
                McDecision(frame=frame, enabled=tuple(enabled), chosen=chosen)
            )
            self._apply(chosen, frame)

    def _enabled_actions(self, ready: list[_Captured]) -> list[Action]:
        """All actions available at this decision point, default first.

        Delivery is offered for every ready message (reordering is the
        point), but fault actions are offered only for the *head* of the
        canonical order.  This loses nothing: to fault message ``e``
        after delivering ``f``, take the deliver-``f`` reorder branch
        first — ``e`` is then the head of its own decision point.  It
        removes an entire axis of redundancy, because "defer ``e`` now"
        and "deliver three other messages, then defer ``e``" are the
        same execution whenever the deliveries commute.
        """
        enabled: list[Action] = [("deliver", e.capture_id) for e in ready]
        head = ready[0]
        if (
            self.defer_limit > 0
            and head.defers < self.defer_limit
            and (
                self.defer_budget is None
                or self._defers_used < self.defer_budget
            )
        ):
            enabled.append(("defer", head.capture_id))
        if self._drops_used < self.drop_budget:
            enabled.append(("drop", head.capture_id))
        if self._dups_used < self.dup_budget:
            enabled.append(("dup", head.capture_id))
        return enabled

    def _choose(self, enabled: list[Action]) -> Action:
        if self._script_pos < len(self.schedule):
            scripted = self.schedule[self._script_pos]
            self._script_pos += 1
            if scripted in enabled:
                return scripted
            self.fallbacks += 1
        return enabled[0]

    def _apply(self, chosen: Action, frame: int) -> None:
        action, capture_id = chosen
        entry = next(e for e in self._pending if e.capture_id == capture_id)
        network = self._network
        assert network is not None  # install() ran before any frame hook
        if action == "deliver":
            self._pending.remove(entry)
            self.delivered += 1
            network.deliver_captured(
                entry.src, entry.dst, entry.payload, entry.size_bytes, entry.sent_at
            )
        elif action == "drop":
            self._pending.remove(entry)
            self._drops_used += 1
            self.dropped += 1
            network.drop_captured()
        elif action == "dup":
            self._dups_used += 1
            self.duplicated += 1
            self.delivered += 1
            network.deliver_captured(
                entry.src, entry.dst, entry.payload, entry.size_bytes, entry.sent_at
            )
            self._pending.remove(entry)
            self._pending.append(
                _Captured(
                    capture_id=self._next_id,
                    src=entry.src,
                    dst=entry.dst,
                    payload=entry.payload,
                    size_bytes=entry.size_bytes,
                    sent_at=entry.sent_at,
                    type_name=entry.type_name,
                    ready_at=frame,
                )
            )
            self.meta[self._next_id] = (entry.src, entry.dst, entry.type_name)
            self._next_id += 1
        elif action == "defer":
            entry.ready_at = frame + 1
            entry.defers += 1
            self._defers_used += 1
            self.deferred += 1
        else:
            raise ValueError(f"unknown schedule action {action!r}")

    # ---- introspection ---------------------------------------------------

    def choices(self) -> tuple[Action, ...]:
        """The decision sequence this run actually took."""
        return tuple(d.chosen for d in self.decisions)

    def stats(self) -> dict[str, int]:
        return {
            "captured": self.captured,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "duplicated": self.duplicated,
            "deferred": self.deferred,
            "decisions": len(self.decisions),
            "fallbacks": self.fallbacks,
        }

    # ---- serialisation ---------------------------------------------------

    def params_json(self) -> dict[str, Any]:
        """The controller's envelope, without config overrides."""
        return {
            "controlled": sorted(self.controlled),
            "window": [self.window[0], self.window[1]],
            "drop_budget": self.drop_budget,
            "dup_budget": self.dup_budget,
            "defer_limit": self.defer_limit,
            "defer_budget": self.defer_budget,
            "controlled_src": (
                None if self.controlled_src is None else sorted(self.controlled_src)
            ),
            "schedule": [list(a) for a in self.schedule],
        }

    @staticmethod
    def from_json(data: Mapping[str, Any]) -> "McController":
        """Rebuild from a tape scenario's ``mc`` mapping.

        The ``config`` key (WatchmenConfig overrides) is consumed by
        :meth:`repro.replay.scenario.TapeScenario.make_config`, not here.
        """
        window = data["window"]
        raw_defer_budget = data.get("defer_budget")
        return McController(
            controlled=tuple(str(name) for name in data["controlled"]),
            window=(int(window[0]), int(window[1])),
            drop_budget=int(data.get("drop_budget", 0)),
            dup_budget=int(data.get("dup_budget", 0)),
            defer_limit=int(data.get("defer_limit", 0)),
            defer_budget=None if raw_defer_budget is None else int(raw_defer_budget),
            controlled_src=data.get("controlled_src"),
            schedule=tuple(
                (str(action), int(cid))
                for action, cid in data.get("schedule", ())
            ),
        )
