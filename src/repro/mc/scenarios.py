"""Model-checking scenarios: small, shrunken protocol situations.

A :class:`McScenario` bundles everything one bounded exploration needs: a
deterministic base :class:`~repro.replay.scenario.TapeScenario` (small
roster, zero ambient loss, LAN latency — the *only* nondeterminism left
is the delivery schedule), the controlled message types and decision
window, the fault budgets, the invariants to check, and optional
:class:`~repro.faults.schedule.FaultSchedule` entries (a partition for
the eviction scenario).

The configs are *shrunk*: proxy epochs and silence thresholds are pulled
down so that an entire handoff or eviction round fits inside a horizon
the explorer can enumerate exhaustively.  The shrunken values respect
every :class:`~repro.core.config.WatchmenConfig` validation invariant
(failover still precedes eviction, retries still fit the window), so the
protocol logic being explored is the same one the full-scale defaults
run — only the clock is faster.

Every execution of a scenario ends with a **quiescence tail**: the
decision window closes well before the last frame, leaving room for ACK
retransmissions, epoch rollover and membership settling.  The invariants
in :mod:`repro.mc.invariants` are end-state properties and rely on this.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from repro.core.messages import (
    HandoffMessage,
    KillClaim,
    MisbehaviorEvidence,
    RemovalProposal,
    SubscriptionRequest,
)
from repro.faults.byzantine import EquivocationFault
from repro.faults.schedule import FaultSchedule, PartitionFault
from repro.mc.controller import Action
from repro.replay.scenario import TapeScenario

__all__ = ["McScenario", "SCENARIOS", "scenario_by_name"]


@dataclass(frozen=True)
class McScenario:
    """One bounded-exploration setup: base run + decision envelope."""

    name: str
    description: str
    base: TapeScenario
    controlled: tuple[str, ...]
    window: tuple[int, int]
    invariants: tuple[str, ...]
    config: Mapping[str, Any] = field(default_factory=dict)
    faults: FaultSchedule | None = None
    drop_budget: int = 0
    dup_budget: int = 0
    defer_limit: int = 0
    #: total defers per execution; None lets every message use its limit
    defer_budget: int | None = None
    #: capture only sends from these nodes (None = all senders)
    controlled_src: tuple[int, ...] | None = None
    #: exploration budget: executions before the explorer gives up
    max_executions: int = 256

    def mc_json(self, schedule: tuple[Action, ...] = ()) -> dict[str, Any]:
        """The ``mc`` envelope a tape scenario (and its tapes) carries."""
        return {
            "config": dict(self.config),
            "controlled": sorted(self.controlled),
            "window": [self.window[0], self.window[1]],
            "drop_budget": self.drop_budget,
            "dup_budget": self.dup_budget,
            "defer_limit": self.defer_limit,
            "defer_budget": self.defer_budget,
            "controlled_src": (
                None if self.controlled_src is None else sorted(self.controlled_src)
            ),
            "schedule": [list(action) for action in schedule],
        }

    def tape_scenario(self, schedule: tuple[Action, ...] = ()) -> TapeScenario:
        """The base scenario with this envelope (and schedule) embedded."""
        return replace(self.base, mc=self.mc_json(schedule))


def _names(*types: type) -> tuple[str, ...]:
    return tuple(t.__name__ for t in types)


#: Proxy handoff vs subscription routing: three players, epochs shrunk to
#: 16 frames so the window straddles two handoffs.  Subscription requests
#: relay through the sender's proxy to the target's proxy while the
#: target's proxy *changes underneath the relay*; one drop and one defer
#: are enough to exercise the late-registration and retransmission paths.
_HANDOFF = McScenario(
    name="handoff-subscription",
    description=(
        "subscription relay racing proxy handoff across two shrunken epochs"
    ),
    base=TapeScenario(
        players=3,
        frames=96,
        seed=11,
        latency="lan",
        loss_rate=0.0,
        jitter_ms=0.0,
    ),
    controlled=_names(SubscriptionRequest, HandoffMessage),
    window=(12, 36),
    invariants=("no_orphaned_subscription", "membership_agreement"),
    config={"proxy_period_frames": 16},
    drop_budget=1,
    defer_limit=1,
)

#: Crash-then-heal eviction quorum: four players, one of them cut off by
#: a partition for longer than the shrunken membership silence threshold,
#: healing before the removal epoch applies.  Four is the smallest roster
#: where the liveness-challenge defense can work at all: with three, both
#: surviving nodes are the subject's first-hop acceptors, which the
#: defense burst deliberately skips.  The silence trips at frame 40, so
#: every proposal is sent then; the window closes before the frame-44 ACK
#: retransmissions (pure echoes of already-captured sends).  Deferring
#: and dropping the proposals probes the quorum bookkeeping across
#: frames; the rescind-on-liveness guard in
#: ``MembershipView.heard_from`` is what keeps every interleaving
#: eviction-free.  The partitioned node's own proposals (it suspects the
#: entire live side at once) can never reach quorum — one proposer of
#: four — so ``controlled_src`` leaves them to the ordinary network,
#: where the partition drops them, instead of tripling the schedule
#: space with decisions that cannot influence the invariant.
_EVICTION = McScenario(
    name="crash-eviction",
    description=(
        "partition-then-heal removal quorum under proposal reordering"
    ),
    base=TapeScenario(
        players=4,
        frames=96,
        seed=7,
        latency="lan",
        loss_rate=0.0,
        jitter_ms=0.0,
    ),
    controlled=_names(RemovalProposal),
    window=(39, 43),
    invariants=("no_false_eviction", "membership_agreement"),
    config={
        "proxy_period_frames": 24,
        "proxy_silence_threshold_frames": 12,
        "membership_silence_frames": 20,
    },
    faults=FaultSchedule(
        partitions=(
            PartitionFault(
                group_a=frozenset({3}),
                group_b=frozenset({0, 1, 2}),
                start_frame=20,
                end_frame=42,
            ),
        ),
    ),
    drop_budget=1,
    defer_limit=2,
    defer_budget=2,
    controlled_src=(0, 1, 2),
    max_executions=1500,
)

#: Kill-claim duplication: three players in close quarters so kills occur
#: early; one duplication plus deferrals checks that sequence dedup
#: screens the copy on every interleaving instead of double-judging.
_KILL = McScenario(
    name="kill-claim",
    description="duplicated kill claims must earn exactly one judgement",
    base=TapeScenario(
        players=3,
        frames=100,
        seed=5,
        latency="lan",
        loss_rate=0.0,
        jitter_ms=0.0,
    ),
    controlled=_names(KillClaim),
    window=(0, 80),
    invariants=("single_kill_credit",),
    dup_budget=1,
    defer_limit=1,
)

#: Equivocation-evidence quorum: four players, one equivocating for half
#: a shrunken epoch.  Every witness broadcasts one self-certifying
#: :class:`~repro.core.messages.MisbehaviorEvidence`; the explorer drops,
#: duplicates and reorders those broadcasts.  The properties under test:
#: duplicate or reordered evidence convicts *exactly once* (the first
#: conviction pins the removal epoch; ``MembershipView.convict`` is
#: idempotent), dropped evidence is healed by the ACK retry ladder, and
#: every honest node ends on the same roster — with the equivocator gone
#: — regardless of which witness's evidence arrived first.  The
#: equivocator's frames straddle an epoch boundary on purpose, so
#: different witnesses pin *different* due epochs; agreement must still
#: hold at quiescence.  ``controlled_src`` confines the decision space to
#: witness 0's broadcasts — the other witnesses' evidence rides the
#: ordinary network, already convicting everyone, so the explorer probes
#: the *redundant* lane: every way of dropping, duplicating or delaying
#: one witness's evidence against a backdrop of competing evidence, which
#: is exactly where a non-idempotent convict() or a rescindable
#: conviction would diverge.  Keeping the space single-witness is what
#: lets the exploration complete exhaustively under CI's coverage gate.
_EVIDENCE = McScenario(
    name="equivocation-evidence",
    description=(
        "duplicated and reordered misbehavior evidence must convict the "
        "equivocator exactly once, on every honest node"
    ),
    base=TapeScenario(
        players=4,
        frames=96,
        seed=9,
        latency="lan",
        loss_rate=0.0,
        jitter_ms=0.0,
    ),
    controlled=_names(MisbehaviorEvidence),
    window=(20, 44),
    invariants=(
        "no_false_eviction",
        "membership_agreement",
        "equivocator_convicted",
    ),
    config={"proxy_period_frames": 24, "byzantine_hardening": True},
    faults=FaultSchedule(
        byzantine=(
            EquivocationFault(node_id=3, start_frame=20, end_frame=32),
        ),
        seed=9,
    ),
    drop_budget=1,
    dup_budget=1,
    defer_limit=2,
    defer_budget=2,
    controlled_src=(0,),
    max_executions=1500,
)

SCENARIOS: tuple[McScenario, ...] = (_HANDOFF, _EVICTION, _KILL, _EVIDENCE)


def scenario_by_name(name: str) -> McScenario:
    for scenario in SCENARIOS:
        if scenario.name == name:
            return scenario
    known = ", ".join(s.name for s in SCENARIOS)
    raise ValueError(f"unknown mc scenario {name!r} (known: {known})")
