"""Bounded exhaustive exploration of delivery schedules.

The explorer enumerates the decision tree the
:class:`~repro.mc.controller.McController` exposes: each execution runs
the scenario under a *schedule prefix* (the controller follows the
prefix, then the default deliver-first policy), and every decision point
past the prefix spawns branches for each alternative enabled action.
Because the session is fully deterministic for a fixed prefix, the tree
is well defined and a depth-first walk with a seen-prefix set visits
every reachable schedule exactly once.

Partial-order reduction: an alternative ``("deliver", m2)`` at a point
whose chosen action was ``("deliver", m1)`` is pruned when the two
deliveries are *independent* — different destination nodes, or same
destination but non-conflicting handler write-sets per the M-family
footprint table (a store conflicts only if some writer is not annotated
``repro-mc: commutes``).  Swapping independent deliveries commutes, so
the unexplored branch reaches a state the explored order also reaches.
Deliveries whose handlers can transitively *emit* a controlled type are
never treated as independent: delivering them changes the future
decision space itself.  Drop/dup/defer alternatives are never pruned.

A violating execution is minimized before reporting: first the shortest
violating schedule prefix, then greedy deletion of remaining decisions —
each candidate re-executed, so the final schedule is a true
counterexample, not a guess.  :func:`write_counterexample` records it as
an ordinary ``repro.tape.v1`` artifact whose scenario carries the ``mc``
envelope; ``repro tape verify`` replays the identical interleaving.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.game.trace import GameTrace
from repro.mc.controller import Action, McController, McDecision
from repro.mc.invariants import INVARIANTS
from repro.mc.scenarios import McScenario
from repro.replay.recorder import TapeRecorder
from repro.replay.tape import Tape, write_tape

__all__ = [
    "ExecutionOutcome",
    "ExploreReport",
    "Explorer",
    "explore_scenario",
    "independence_from_footprints",
    "load_footprints",
    "render_report",
    "summary_json",
    "write_counterexample",
]


def load_footprints(root: Path) -> dict[str, Any]:
    """Run the M-family extraction over ``root`` and return its JSON form.

    The same table ``repro lint --footprints`` exports; loading it from a
    file (CI caches it between jobs) and recomputing it here are
    interchangeable.
    """
    from repro.lint.engine import LintConfig, run_lint

    report = run_lint(LintConfig(root=root))
    if report.footprints is None:
        raise RuntimeError("lint pass produced no footprint table")
    return report.footprints.to_json()


def independence_from_footprints(
    footprints: Mapping[str, Any],
) -> tuple[dict[str, dict[str, Any]], dict[str, frozenset[str]]]:
    """(per-type write/commute sets, per-type transitive emits)."""
    by_type: dict[str, dict[str, Any]] = dict(footprints.get("by_type", {}))
    emits: dict[str, set[str]] = {}
    for handler in footprints.get("handlers", {}).values():
        for consumed in handler.get("consumes", ()):
            emits.setdefault(consumed, set()).update(handler.get("emits", ()))
    return by_type, {name: frozenset(types) for name, types in emits.items()}


@dataclass(frozen=True)
class ExecutionOutcome:
    """One deterministic run under one schedule prefix."""

    choices: tuple[Action, ...]
    decisions: tuple[McDecision, ...]
    meta: Mapping[int, tuple[int, int, str]]
    violation: str | None
    invariant: str | None
    controller_stats: Mapping[str, int]


@dataclass
class ExploreReport:
    """What one bounded exploration established."""

    scenario: str
    executions: int = 0
    states_explored: int = 0
    pruned: int = 0
    complete: bool = True
    violation: str | None = None
    invariant: str | None = None
    schedule: tuple[Action, ...] | None = None
    tape_path: str | None = None

    @property
    def ok(self) -> bool:
        return self.violation is None

    def to_json(self) -> dict[str, Any]:
        return {
            "scenario": self.scenario,
            "executions": self.executions,
            "states_explored": self.states_explored,
            "pruned": self.pruned,
            "complete": self.complete,
            "ok": self.ok,
            "violation": self.violation,
            "invariant": self.invariant,
            "schedule": (
                [list(action) for action in self.schedule]
                if self.schedule is not None
                else None
            ),
            "tape_path": self.tape_path,
        }


@dataclass
class Explorer:
    """Depth-first schedule enumeration for one scenario."""

    scenario: McScenario
    footprints: Mapping[str, Any] | None = None
    max_executions: int | None = None
    _trace: GameTrace | None = field(default=None, repr=False)
    _by_type: dict[str, dict[str, Any]] = field(default_factory=dict, repr=False)
    _emits: dict[str, frozenset[str]] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.footprints is not None:
            self._by_type, self._emits = independence_from_footprints(
                self.footprints
            )

    # ---- single execution ------------------------------------------------

    def _shared_trace(self) -> GameTrace:
        """The deathmatch is schedule-independent: simulate it once."""
        if self._trace is None:
            self._trace = self.scenario.base.make_trace()
        return self._trace

    def execute(self, schedule: tuple[Action, ...]) -> ExecutionOutcome:
        tape_scenario = self.scenario.tape_scenario(schedule)
        session = tape_scenario.make_session(
            self._shared_trace(), faults=self.scenario.faults
        )
        controller = session.network.controller
        assert isinstance(controller, McController)
        session.run()
        violation: str | None = None
        invariant: str | None = None
        for name in self.scenario.invariants:
            message = INVARIANTS[name](session)
            if message is not None:
                violation, invariant = message, name
                break
        return ExecutionOutcome(
            choices=controller.choices(),
            decisions=tuple(controller.decisions),
            meta=dict(controller.meta),
            violation=violation,
            invariant=invariant,
            controller_stats=controller.stats(),
        )

    # ---- partial-order reduction -----------------------------------------

    def _independent(
        self,
        alt: Action,
        chosen: Action,
        meta: Mapping[int, tuple[int, int, str]],
    ) -> bool:
        if alt[0] != "deliver" or chosen[0] != "deliver":
            return False
        alt_meta = meta.get(alt[1])
        chosen_meta = meta.get(chosen[1])
        if alt_meta is None or chosen_meta is None:
            return False  # unknown message: never prune
        _, alt_dst, alt_type = alt_meta
        _, chosen_dst, chosen_type = chosen_meta
        controlled = self.scenario.controlled
        for type_name in (alt_type, chosen_type):
            if self._emits.get(type_name, frozenset()) & frozenset(controlled):
                return False  # delivery may grow the decision space
        if alt_dst != chosen_dst:
            return True
        alt_info = self._by_type.get(alt_type)
        chosen_info = self._by_type.get(chosen_type)
        if alt_info is None or chosen_info is None:
            return False  # no footprint: conservatively dependent
        shared = set(alt_info.get("writes", ())) & set(
            chosen_info.get("writes", ())
        )
        for store in shared:
            if store not in alt_info.get("commutes", ()) or store not in (
                chosen_info.get("commutes", ())
            ):
                return False
        return True

    # ---- exploration -----------------------------------------------------

    def run(self) -> ExploreReport:
        budget = (
            self.max_executions
            if self.max_executions is not None
            else self.scenario.max_executions
        )
        report = ExploreReport(scenario=self.scenario.name)
        stack: list[tuple[Action, ...]] = [()]
        seen: set[tuple[Action, ...]] = {()}
        while stack:
            if report.executions >= budget:
                report.complete = False
                break
            prefix = stack.pop()
            outcome = self.execute(prefix)
            report.executions += 1
            report.states_explored += len(outcome.decisions)
            if outcome.violation is not None:
                schedule = self._minimize(outcome.choices, report)
                report.violation = outcome.violation
                report.invariant = outcome.invariant
                report.schedule = schedule
                final = self.execute(schedule)
                report.executions += 1
                if final.violation is not None:
                    report.violation = final.violation
                    report.invariant = final.invariant
                return report
            for index in range(len(prefix), len(outcome.decisions)):
                decision = outcome.decisions[index]
                for alt in decision.enabled:
                    if alt == decision.chosen:
                        continue
                    if self._independent(alt, decision.chosen, outcome.meta):
                        report.pruned += 1
                        continue
                    branch = outcome.choices[:index] + (alt,)
                    if branch not in seen:
                        seen.add(branch)
                        stack.append(branch)
        return report

    # ---- counterexample minimization -------------------------------------

    def _minimize(
        self, schedule: tuple[Action, ...], report: ExploreReport
    ) -> tuple[Action, ...]:
        """Shortest violating prefix, then greedy decision deletion.

        Every candidate is re-executed, so whatever survives is a real
        counterexample.  Minimization executions count against the same
        report (they are honest work), but not against the exploration
        budget — a found violation is always minimized.
        """

        def violates(candidate: tuple[Action, ...]) -> bool:
            outcome = self.execute(candidate)
            report.executions += 1
            report.states_explored += len(outcome.decisions)
            return outcome.violation is not None

        best = schedule
        for length in range(len(schedule) + 1):
            candidate = schedule[:length]
            if violates(candidate):
                best = candidate
                break
        shrinking = True
        while shrinking:
            shrinking = False
            for index in range(len(best)):
                candidate = best[:index] + best[index + 1 :]
                if violates(candidate):
                    best = candidate
                    shrinking = True
                    break
        return best


def write_counterexample(
    scenario: McScenario, schedule: tuple[Action, ...], path: Path
) -> Tape:
    """Record the violating schedule as a verifiable ``repro.tape.v1``."""
    tape_scenario = scenario.tape_scenario(schedule)
    game_map = tape_scenario.make_map()
    trace = tape_scenario.make_trace(game_map)
    session = tape_scenario.make_session(
        trace, faults=scenario.faults, game_map=game_map
    )
    recorder = TapeRecorder(session, tape_scenario, faults=scenario.faults)
    recorder.attach()
    session.run()
    tape = recorder.finalize()
    write_tape(tape, path)
    return tape


def explore_scenario(
    scenario: McScenario,
    footprints: Mapping[str, Any] | None = None,
    max_executions: int | None = None,
    counterexample_dir: Path | None = None,
) -> ExploreReport:
    """Explore one scenario; persist a counterexample tape on violation."""
    explorer = Explorer(
        scenario, footprints=footprints, max_executions=max_executions
    )
    report = explorer.run()
    if report.schedule is not None and counterexample_dir is not None:
        counterexample_dir.mkdir(parents=True, exist_ok=True)
        path = counterexample_dir / f"mc-{scenario.name}.tape"
        write_counterexample(scenario, report.schedule, path)
        report.tape_path = str(path)
    return report


def render_report(report: ExploreReport) -> str:
    status = "ok" if report.ok else f"VIOLATION [{report.invariant}]"
    coverage = "exhaustive" if report.complete else "budget-bounded"
    lines = [
        f"mc {report.scenario}: {status} — {report.executions} executions, "
        f"{report.states_explored} decision points, {report.pruned} pruned "
        f"({coverage})"
    ]
    if report.violation is not None:
        lines.append(f"  {report.violation}")
        if report.schedule is not None:
            rendered = ", ".join(f"{a}:{i}" for a, i in report.schedule)
            lines.append(f"  minimized schedule: [{rendered or 'default'}]")
        if report.tape_path is not None:
            lines.append(f"  counterexample tape: {report.tape_path}")
    return "\n".join(lines)


def summary_json(reports: list[ExploreReport]) -> dict[str, Any]:
    return {
        "version": 1,
        "scenarios": [report.to_json() for report in reports],
        "states_explored": sum(r.states_explored for r in reports),
        "executions": sum(r.executions for r in reports),
        "ok": all(r.ok for r in reports),
        "complete": all(r.complete for r in reports),
    }
