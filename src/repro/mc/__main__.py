"""``python -m repro.mc`` — standalone model-checker entry point."""

import sys

from repro.mc.cli import main

if __name__ == "__main__":
    sys.exit(main())
