"""Safety invariants the model checker evaluates at the end of a run.

Each invariant is a pure predicate over a finished
:class:`~repro.core.protocol.WatchmenSession`: it returns ``None`` when
the property holds and a human-readable violation description when it
does not.  They are *end-state* properties on purpose — the explorer's
scenarios end with a quiescence tail (no controlled decisions, enough
frames for retransmissions and epoch rollover to settle), so any
violation present at the end is a stable protocol failure rather than a
transient in-flight state.

The checks are deliberately white-box: they reach into node internals
(membership views, subscriber tables, emitted ratings) the way a test
harness would, because the properties are about the *protocol state*, not
about any one node's public API.

* ``no_false_eviction`` — no node that is alive at the end of the run has
  been removed from any live node's membership roster.  The rescind-on-
  liveness guard in :meth:`repro.core.membership.MembershipView.heard_from`
  is what defends this against partition-then-heal schedules.
* ``membership_agreement`` — all live nodes agree on the roster at
  quiescence (eventual agreement, checked after the settle tail).
* ``no_orphaned_subscription`` — every interest subscription a live
  player believes is active is actually registered at *some* live node
  (the target's proxy or a failover candidate).  Because the planner
  never re-sends a subscription while the target stays in view, a
  request lost beyond the ACK retry horizon orphans the subscriber
  silently — this is the handoff/drop race the paper's proxy rotation
  must survive.
* ``single_kill_credit`` — no node emitted more than one kill-check
  rating for the same (subject, frame): duplicated or replayed
  ``KillClaim`` deliveries must be screened by sequence dedup, never
  double-judged.
* ``equivocator_convicted`` — every honest node's membership view has
  removed every Byzantine attacker at quiescence, no matter how the
  evidence broadcasts were dropped, duplicated or reordered.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable

from repro.core.protocol import WatchmenSession
from repro.core.verification import CheckKind
from repro.core.node import WatchmenNode

__all__ = [
    "INVARIANTS",
    "live_nodes",
    "membership_agreement",
    "no_false_eviction",
    "no_orphaned_subscription",
    "single_kill_credit",
]

InvariantFn = Callable[[WatchmenSession], "str | None"]


def live_nodes(session: WatchmenSession) -> dict[int, WatchmenNode]:
    """Honest nodes still running at the end of the session.

    Byzantine attackers are excluded: their eviction is the protocol
    working, so honest-safety invariants must not count them as victims,
    and agreement is a property of the honest nodes' views.
    """
    return {
        node_id: node
        for node_id, node in session.nodes.items()
        if node_id not in session.crashed
        and node_id not in session.departures
        and node_id not in session.byzantine_ids
    }


def no_false_eviction(session: WatchmenSession) -> str | None:
    live = live_nodes(session)
    for observer_id, observer in sorted(live.items()):
        roster = set(observer.membership.current_roster())
        for peer_id in sorted(live):
            if peer_id not in roster:
                return (
                    f"node {observer_id} evicted live player {peer_id} "
                    f"(roster: {sorted(roster)})"
                )
    return None


def membership_agreement(session: WatchmenSession) -> str | None:
    live = live_nodes(session)
    rosters = {
        node_id: frozenset(node.membership.current_roster())
        for node_id, node in sorted(live.items())
    }
    if len(set(rosters.values())) <= 1:
        return None
    lines = ", ".join(
        f"{node_id}:{sorted(roster)}" for node_id, roster in rosters.items()
    )
    return f"live nodes disagree on the roster at quiescence ({lines})"


def no_orphaned_subscription(session: WatchmenSession) -> str | None:
    live = live_nodes(session)
    for subscriber_id, subscriber in sorted(live.items()):
        for target_id in sorted(subscriber.planner.active_interest()):
            if target_id not in live:
                continue
            registered = False
            for holder in live.values():
                state = holder._clients.get(target_id)
                if state is None:
                    continue
                if subscriber_id in state.table.interest_subscribers(
                    holder.current_frame
                ):
                    registered = True
                    break
            if not registered:
                return (
                    f"player {subscriber_id} believes he is interest-"
                    f"subscribed to {target_id}, but no live node holds "
                    f"the subscription (orphaned by a lost request)"
                )
    return None


#: Detail vocabulary of ``KillVerifier.verify`` — the claim-judgement
#: side of the KILL check family.  ``ProjectileVerifier.verify_spawn``
#: shares ``CheckKind.KILL`` but speaks a disjoint vocabulary
#: ("consistent projectile spawn", "speed … vs spec …", "origin … from
#: the shooter"), and a spawn rating at the same (subject, frame) as a
#: claim rating is legitimate — only *claim* judgements must be unique.
_CLAIM_DETAIL_MARKERS = (
    "consistent kill",
    "unknown weapon",
    "distance ",
    "no line of sight",
    "claimed ",
    "kill faster",
    "no matching projectile",
    "closest announced projectile",
)


def _is_claim_judgement(detail: str) -> bool:
    return any(marker in detail for marker in _CLAIM_DETAIL_MARKERS)


def single_kill_credit(session: WatchmenSession) -> str | None:
    for node_id, node in sorted(session.nodes.items()):
        credits = Counter(
            (rating.subject_id, rating.frame)
            for rating in node.metrics.ratings
            if rating.check == CheckKind.KILL
            and _is_claim_judgement(rating.detail)
        )
        for (subject_id, frame), count in sorted(credits.items()):
            if count > 1:
                return (
                    f"node {node_id} judged the kill claim of player "
                    f"{subject_id} at frame {frame} {count} times "
                    f"(duplicate delivery escaped sequence dedup)"
                )
    return None


def equivocator_convicted(session: WatchmenSession) -> str | None:
    """Every honest node removed every Byzantine attacker at quiescence.

    Evidence broadcasts may be dropped, duplicated or reordered by the
    schedule; the ACK retry ladder plus the idempotent
    :meth:`~repro.core.membership.MembershipView.convict` must still
    deliver exactly one conviction to every honest membership view.
    """
    if not session.byzantine_ids:
        return None
    for node_id, node in sorted(live_nodes(session).items()):
        missing = session.byzantine_ids - node.membership.removed
        if missing:
            return (
                f"node {node_id} never removed equivocator(s) "
                f"{sorted(missing)} (roster: "
                f"{sorted(node.membership.current_roster())})"
            )
    return None


#: name → predicate, the vocabulary scenarios use to declare their checks
INVARIANTS: dict[str, InvariantFn] = {
    "no_false_eviction": no_false_eviction,
    "membership_agreement": membership_agreement,
    "no_orphaned_subscription": no_orphaned_subscription,
    "single_kill_credit": single_kill_credit,
    "equivocator_convicted": equivocator_convicted,
}
