"""``repro.mc`` — bounded interleaving model checker for the protocol.

Two layers cooperate here.  The *static* layer is the M-family of lint
rules (:mod:`repro.lint.footprint`): it walks every message handler with
the whole-program call graph and extracts a footprint — which message
types the handler consumes and emits, and which authoritative stores it
writes.  The *dynamic* layer is this package: a
:class:`~repro.mc.controller.McController` hooks the transport so the
delivery order of a few controlled message types becomes an explicit
decision point, and the :class:`~repro.mc.explorer.Explorer` enumerates
every bounded interleaving (plus budgeted drop/duplicate/defer faults) of
small scenarios, checking protocol safety invariants at quiescence.  The
footprint table seeds the explorer's partial-order reduction: deliveries
whose write-sets cannot conflict are never reordered against each other.

Violations are delta-debug-minimized and written as ordinary
``repro.tape.v1`` counterexamples whose scenario carries the ``mc``
envelope, so ``repro tape verify`` replays the exact losing interleaving.
Entry point: ``repro mc`` (see :mod:`repro.mc.cli`).
"""

from repro.mc.controller import Action, McController, McDecision
from repro.mc.explorer import (
    ExploreReport,
    Explorer,
    explore_scenario,
    write_counterexample,
)
from repro.mc.invariants import INVARIANTS
from repro.mc.scenarios import SCENARIOS, McScenario, scenario_by_name

__all__ = [
    "Action",
    "ExploreReport",
    "Explorer",
    "INVARIANTS",
    "McController",
    "McDecision",
    "McScenario",
    "SCENARIOS",
    "explore_scenario",
    "scenario_by_name",
    "write_counterexample",
]
