#!/usr/bin/env python
"""Mutation self-test for the model checker: the gate must be able to fail.

Deletes the rescind-on-liveness block from
``MembershipView.heard_from`` — the guard that clears pending removal
suspicion when a suspected player's live voice is heard again — and
requires the crash-eviction exploration to find a false-eviction
counterexample, minimize it, and write it as a ``repro.tape.v1``
artifact that:

1. replays byte-identically under the mutated tree
   (``repro tape verify`` exits 0 — the counterexample is real), and
2. diverges on the restored clean tree (``repro tape verify`` exits 1 —
   the tape pins the buggy behaviour, not some schedule accident).

The mutation is applied textually and restored with ``git checkout``;
the script refuses to run if the target file has local modifications.
Exit 0 when the whole loop holds, 1 on any deviation.
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
from pathlib import Path

TARGET = Path("src/repro/core/membership.py")

#: the rescind-on-liveness guard inside ``heard_from``
MUTATION_BLOCK = """\
            if player_id not in self.removed and player_id not in self.convicted:
                self._proposals.pop(player_id, None)
                self._own_proposals.discard(player_id)
                self._scheduled_removals.pop(player_id, None)
"""


def run(*argv: str) -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run([sys.executable, *argv], env=env).returncode


def fail(message: str) -> int:
    print(f"mc mutation self-test: {message}", file=sys.stderr)
    return 1


def main() -> int:
    if not TARGET.is_file():
        return fail(f"run from the repository root ({TARGET} not found)")
    dirty = subprocess.run(
        ["git", "diff", "--quiet", "--", str(TARGET)]
    ).returncode
    if dirty:
        return fail(f"{TARGET} has local modifications; commit or stash first")

    source = TARGET.read_text(encoding="utf-8")
    if MUTATION_BLOCK not in source:
        return fail(
            "rescind block not found in heard_from — the guard moved; "
            "update MUTATION_BLOCK to keep this self-test honest"
        )

    ce_dir = Path(tempfile.mkdtemp(prefix="mc-mutation-"))
    tape = ce_dir / "mc-crash-eviction.tape"
    try:
        TARGET.write_text(
            source.replace(MUTATION_BLOCK, ""), encoding="utf-8"
        )
        print("mutation applied: rescind-on-liveness guard removed")

        code = run(
            "-m", "repro", "mc", "crash-eviction",
            "--counterexample-dir", str(ce_dir),
        )
        if code != 1:
            return fail(f"expected exit 1 under the mutation, got {code}")
        if not tape.is_file():
            return fail("no counterexample tape was written")

        code = run("-m", "repro", "tape", "verify", str(tape))
        if code != 0:
            return fail(
                f"counterexample does not replay under the mutation "
                f"(verify exit {code})"
            )
    finally:
        subprocess.run(["git", "checkout", "--", str(TARGET)], check=True)
        print("mutation reverted")

    code = run("-m", "repro", "tape", "verify", str(tape))
    if code != 1:
        return fail(
            f"expected the counterexample to diverge on the clean tree "
            f"(verify exit 1), got {code}"
        )
    print(
        "mc mutation self-test passed: counterexample found, minimized, "
        "replayed under the mutation, and rejected by the clean tree"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
